"""Per-tenant metering primitives: the tap object and the usage record.

This module is the import-light bottom of the billing layer -- the
hot-path tap sites (:mod:`repro.vswitch.ovs`, :mod:`repro.sriov.nic`,
:mod:`repro.sriov.pcie`, :mod:`repro.core.orchestrator`) import it at
module load, so it must not pull in the deployment stack.  Everything
that knows about deployments lives in :mod:`repro.billing.session`.

Two tap implementations share one interface:

``NullMeter``
    The zero-cost default.  ``enabled`` is ``False`` and every tap is a
    no-op; instrumentation sites guard with ``if METER.enabled`` so the
    disabled path costs two attribute loads and a branch per packet.

``TenantMeter``
    The recording tap a :class:`~repro.billing.session.MeteringSession`
    installs for one run: plain dict accumulators keyed by tenant id,
    harvested (and delta'd) at window boundaries.  Unattributable
    frames (no tenant id) land on tenant ``-1`` so conservation checks
    still close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Bucket for frames that carry no tenant id (control traffic, frames
#: synthesized outside the load generator).
UNATTRIBUTED = -1


class NullMeter:
    """The disabled tap: shared no-ops, nothing recorded."""

    enabled = False

    def cpu(self, tenant: Optional[int], seconds: float,
            n: int = 1) -> None:
        pass

    def pcie(self, tenant: Optional[int], nbytes: int) -> None:
        pass

    def drop(self, tenant: Optional[int], reason: str, n: int = 1) -> None:
        pass

    def fault_drop(self, tenant: Optional[int]) -> None:
        pass


class TenantMeter:
    """The recording tap: per-tenant accumulators for one run.

    All methods take the frame's tenant id (``None`` folds into
    :data:`UNATTRIBUTED`).  Totals are monotonically increasing, so a
    window harvest is a snapshot-and-subtract, exactly like the
    counters :class:`~repro.core.accounting.NetworkingMeter` reads.
    """

    enabled = True

    def __init__(self) -> None:
        #: Exact per-packet vswitch CPU (the service time the datapath
        #: actually spent on this tenant's frames), in seconds.
        self.cpu_seconds: Dict[int, float] = {}
        #: Forwarding passes executed per tenant.
        self.passes: Dict[int, int] = {}
        #: PCIe bytes DMA'd across the NIC on the tenant's behalf.
        self.pcie_bytes: Dict[int, int] = {}
        #: (tenant, reason) -> frames dropped by the mediation chain.
        self.drops: Dict[Tuple[int, str], int] = {}
        #: Frames swallowed by an injected fault (crashed vswitch rx).
        self.fault_drops: Dict[int, int] = {}

    @staticmethod
    def _key(tenant: Optional[int]) -> int:
        return UNATTRIBUTED if tenant is None else tenant

    def cpu(self, tenant: Optional[int], seconds: float,
            n: int = 1) -> None:
        """Record ``seconds`` of service time across ``n`` passes (the
        batched tap accumulates a whole bucket in one call)."""
        t = UNATTRIBUTED if tenant is None else tenant
        self.cpu_seconds[t] = self.cpu_seconds.get(t, 0.0) + seconds
        self.passes[t] = self.passes.get(t, 0) + n

    def pcie(self, tenant: Optional[int], nbytes: int) -> None:
        t = UNATTRIBUTED if tenant is None else tenant
        self.pcie_bytes[t] = self.pcie_bytes.get(t, 0) + nbytes

    def drop(self, tenant: Optional[int], reason: str, n: int = 1) -> None:
        key = (UNATTRIBUTED if tenant is None else tenant, reason)
        self.drops[key] = self.drops.get(key, 0) + n

    def fault_drop(self, tenant: Optional[int]) -> None:
        t = UNATTRIBUTED if tenant is None else tenant
        self.fault_drops[t] = self.fault_drops.get(t, 0) + 1

    def totals(self) -> Dict[str, dict]:
        """A point-in-time copy of every accumulator (window harvest)."""
        return {
            "cpu": dict(self.cpu_seconds),
            "passes": dict(self.passes),
            "pcie": dict(self.pcie_bytes),
            "drops": dict(self.drops),
            "fault_drops": dict(self.fault_drops),
        }


@dataclass
class UsageRecord:
    """One tenant's metered usage over one accounting window.

    Two CPU numbers deliberately coexist:

    - ``cpu_seconds`` is the **billable** attribution -- the same
      proportional-share estimate :class:`NetworkingMeter` produces
      (exact for single-tenant compartments), so invoices reconcile
      with the accounting ground truth by construction;
    - ``cpu_seconds_exact`` is the per-packet tap's answer -- what the
      datapath *actually* spent on this tenant.  The gap between the
      two is the misattribution the billing report quantifies.
    """

    tenant_id: int
    compartment: int
    #: Window bounds in simulated seconds.
    t0: float
    t1: float
    #: Billable vswitch CPU (accounting-consistent attribution).
    cpu_seconds: float = 0.0
    #: Per-packet exact vswitch CPU from the dataplane tap.
    cpu_seconds_exact: float = 0.0
    #: Physical core-seconds behind ``cpu_seconds`` (busy time divided
    #: by the core's sharers; equals ``cpu_seconds`` on dedicated cores).
    core_seconds: float = 0.0
    #: NIC bytes through the tenant's attachment points (gateway-VF
    #: hardware counters under MTS; flow-rule counters on the Baseline).
    io_bytes: int = 0
    #: PCIe bytes DMA'd for this tenant's frames.
    pcie_bytes: int = 0
    #: Forwarding passes the vswitch executed for this tenant.
    passes: int = 0
    #: Mediation-chain drops by reason.
    drops: Dict[str, int] = field(default_factory=dict)
    #: Recovery work (flow re-sync, ARP re-learn) charged to this
    #: tenant because its compartment faulted, in seconds.
    fault_seconds: float = 0.0
    #: Frames of this tenant swallowed by an injected fault.
    fault_drops: int = 0
    #: Compartment RAM attributed over the window (byte-seconds).
    memory_byte_seconds: float = 0.0
    #: Attribution quality ("exact" / "estimated" / "self-reported").
    quality: str = "estimated"

    @property
    def window_seconds(self) -> float:
        return self.t1 - self.t0

    @property
    def cpu_utilization(self) -> float:
        """Busy fraction of the window; 0 for an empty window (never
        NaN)."""
        window = self.window_seconds
        return self.cpu_seconds / window if window > 0 else 0.0

    @property
    def io_bytes_per_second(self) -> float:
        window = self.window_seconds
        return self.io_bytes / window if window > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": "usage",
            "tenant": self.tenant_id,
            "compartment": self.compartment,
            "t0": self.t0,
            "t1": self.t1,
            "cpu_seconds": self.cpu_seconds,
            "cpu_seconds_exact": self.cpu_seconds_exact,
            "core_seconds": self.core_seconds,
            "io_bytes": self.io_bytes,
            "pcie_bytes": self.pcie_bytes,
            "passes": self.passes,
            "drops": dict(self.drops),
            "fault_seconds": self.fault_seconds,
            "fault_drops": self.fault_drops,
            "memory_byte_seconds": self.memory_byte_seconds,
            "quality": self.quality,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UsageRecord":
        return cls(
            tenant_id=data["tenant"],
            compartment=data.get("compartment", 0),
            t0=data["t0"],
            t1=data["t1"],
            cpu_seconds=data.get("cpu_seconds", 0.0),
            cpu_seconds_exact=data.get("cpu_seconds_exact", 0.0),
            core_seconds=data.get("core_seconds", 0.0),
            io_bytes=data.get("io_bytes", 0),
            pcie_bytes=data.get("pcie_bytes", 0),
            passes=data.get("passes", 0),
            drops=dict(data.get("drops", {})),
            fault_seconds=data.get("fault_seconds", 0.0),
            fault_drops=data.get("fault_drops", 0),
            memory_byte_seconds=data.get("memory_byte_seconds", 0.0),
            quality=data.get("quality", "estimated"),
        )
