"""Units and unit helpers used throughout the reproduction.

Conventions (chosen once, used everywhere):

- **time** is measured in seconds (float).
- **packet rate** is measured in packets per second (pps, float).
- **data rate** is measured in bits per second (bps, float).
- **sizes** are measured in bytes (int) unless the name says otherwise.
- **CPU work** is measured in cycles (float); a core supplies
  ``frequency_hz`` cycles per second.

The helpers exist so call sites read like the paper ("14 Mpps", "10G link",
"4 GB of RAM", "1 GB hugepage") instead of bare exponents.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3

# -- sizes -----------------------------------------------------------------

KB = 1000
MB = 1000 ** 2
GB = 1000 ** 3
KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3

# -- rates -----------------------------------------------------------------

KPPS = 1e3
MPPS = 1e6
MBPS = 1e6
GBPS = 1e9

# Ethernet physical-layer overhead per frame: 7 B preamble + 1 B SFD +
# 4 B FCS + 12 B inter-frame gap.  The 4 B FCS is part of the frame on the
# wire but not of the L2 payload we model, hence 24 B total overhead over
# the modelled frame size.
ETHERNET_OVERHEAD_BYTES = 24

#: Minimum Ethernet frame (64 B) -- the packet size used for all of Fig. 5's
#: throughput plots.
MIN_FRAME_BYTES = 64

#: 64 B line rate on a 10 Gbps link: 10e9 / ((64 + 20) * 8) = 14.88 Mpps.
#: The paper rounds this to "line rate (14.4 Mpps)" / "replayed at line
#: rate (14 Mpps)".
LINE_RATE_10G_64B_PPS = 10 * GBPS / ((MIN_FRAME_BYTES + 20) * 8)


def line_rate_pps(link_bps: float, frame_bytes: int) -> float:
    """Packets per second a link sustains for back-to-back frames.

    Uses the standard 20 B per-frame physical overhead (preamble, SFD and
    inter-frame gap) on top of the frame including FCS; we model frame
    sizes the way the paper quotes them (64 B means the 64 B Ethernet frame
    with FCS), so the on-wire cost per frame is ``frame_bytes + 20``.
    """
    if frame_bytes <= 0:
        raise ValueError(f"frame_bytes must be positive, got {frame_bytes}")
    return link_bps / ((frame_bytes + 20) * 8.0)


def wire_time(link_bps: float, frame_bytes: int) -> float:
    """Serialization time of one frame on a link, in seconds."""
    return 1.0 / line_rate_pps(link_bps, frame_bytes)


def pps_to_bps(pps: float, frame_bytes: int) -> float:
    """Convert a packet rate to the corresponding goodput in bits/s."""
    return pps * frame_bytes * 8.0


def fmt_rate_pps(pps: float) -> str:
    """Human-readable packet rate, e.g. ``'2.30 Mpps'``."""
    if pps >= MPPS:
        return f"{pps / MPPS:.2f} Mpps"
    if pps >= KPPS:
        return f"{pps / KPPS:.1f} kpps"
    return f"{pps:.0f} pps"


def fmt_rate_bps(bps: float) -> str:
    """Human-readable bit rate, e.g. ``'9.41 Gbps'``."""
    if bps >= GBPS:
        return f"{bps / GBPS:.2f} Gbps"
    if bps >= MBPS:
        return f"{bps / MBPS:.1f} Mbps"
    return f"{bps:.0f} bps"


def fmt_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``'13.4 us'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.2f} ms"
    if seconds >= USEC:
        return f"{seconds / USEC:.1f} us"
    return f"{seconds / 1e-9:.0f} ns"
