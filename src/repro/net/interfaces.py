"""Port abstractions: the glue every device plugs into.

A :class:`Port` is a unidirectional packet consumer -- anything with a
``receive(frame)`` method and a name.  Devices expose ports; wiring a
topology means pointing one device's egress at another device's port.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Frame, FrameBatch


class Port:
    """A named packet sink backed by a handler callable."""

    def __init__(self, name: str, handler: Optional[Callable[[Frame], None]] = None):
        self.name = name
        self._handler = handler
        self._batch_handler: Optional[Callable[[FrameBatch], None]] = None
        self.rx_frames = 0
        self.rx_bytes = 0

    def connect(self, handler: Callable[[Frame], None]) -> None:
        """Attach (or replace) the receive handler."""
        self._handler = handler

    def connect_batch(self, handler: Callable[[FrameBatch], None]) -> None:
        """Attach a batch receive handler (batched fast path)."""
        self._batch_handler = handler

    @property
    def connected(self) -> bool:
        return self._handler is not None

    def receive(self, frame: Frame) -> None:
        """Deliver a frame into this port."""
        self.rx_frames += 1
        self.rx_bytes += frame.wire_size()
        if self._handler is not None:
            self._handler(frame)

    def receive_batch(self, batch: FrameBatch, sim) -> None:
        """Deliver a batch into this port.

        Consumers without a batch handler get the exact per-frame
        behaviour back: each member materializes and is delivered by
        its own event at its own timestamp (the batch contract
        guarantees ``sim.now <= batch.ts[0]``), so unconverted
        components never see batches at all.
        """
        handler = self._batch_handler
        if handler is not None:
            n = len(batch)
            self.rx_frames += n
            self.rx_bytes += batch.frame.wire_size() * n
            handler(batch)
            return
        for i, t in enumerate(batch.ts):
            sim.schedule(t, self.receive, batch.frame_at(i))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Port {self.name} rx={self.rx_frames}>"


class CountingPort(Port):
    """A port that additionally keeps the received frames (bounded)."""

    def __init__(self, name: str, keep: int = 10000):
        super().__init__(name)
        self.keep = keep
        self.frames: List[Frame] = []

    def receive(self, frame: Frame) -> None:
        if len(self.frames) < self.keep:
            self.frames.append(frame)
        super().receive(frame)


class PortPair:
    """A bidirectional attachment point: an rx port and a tx handler.

    Devices that both produce and consume (a VM's NIC interface, a
    vswitch port) are modelled as a pair: the owner receives on ``rx``
    and transmits by calling ``tx``.
    """

    def __init__(self, name: str):
        self.name = name
        self.rx = Port(f"{name}.rx")
        self._tx: Optional[Callable[[Frame], None]] = None
        self._tx_batch: Optional[Callable[[FrameBatch], None]] = None
        self.tx_frames = 0
        self.tx_bytes = 0

    def attach_tx(self, handler: Callable[[Frame], None]) -> None:
        self._tx = handler

    def attach_tx_batch(self, handler: Callable[[FrameBatch], None]) -> None:
        """Attach a batch transmit handler (batched fast path)."""
        self._tx_batch = handler

    def transmit(self, frame: Frame) -> None:
        """Send a frame out of this attachment point."""
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size()
        if self._tx is None:
            raise RuntimeError(f"port pair {self.name} has no tx attached")
        self._tx(frame)

    def transmit_batch(self, batch: FrameBatch, sim) -> None:
        """Send a batch out of this attachment point.

        Falls back to one per-member event at each member's timestamp
        when no batch handler is attached (see
        :meth:`Port.receive_batch` for the contract).
        """
        handler = self._tx_batch
        if handler is not None:
            n = len(batch)
            self.tx_frames += n
            self.tx_bytes += batch.frame.wire_size() * n
            handler(batch)
            return
        for i, t in enumerate(batch.ts):
            sim.schedule(t, self.transmit, batch.frame_at(i))
