"""Physical links and the passive optical taps of the measurement setup.

The paper's testbed connects the load generator and the device under test
with 10G short-range optics and observes both directions through passive
optical taps feeding an Endace DAG capture card (hardware timestamps).
:class:`Link` models serialization + propagation delay; :class:`OpticalTap`
gives measurement code the same vantage point the DAG card had.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro import obs as _obs
from repro.net.interfaces import Port
from repro.net.packet import Frame, FrameBatch
from repro.sim.kernel import Simulator
from repro.units import GBPS


class OpticalTap:
    """A passive tap: observes every frame crossing a link direction.

    Observers get ``(frame, timestamp)`` -- the hardware-timestamp analog.
    """

    def __init__(self, name: str):
        self.name = name
        self._observers: List[Callable[[Frame, float], None]] = []
        self._batch_observers: List[
            Callable[[FrameBatch, List[float]], None]] = []
        self.frames_seen = 0

    def observe(self, callback: Callable[[Frame, float], None]) -> None:
        self._observers.append(callback)

    def observe_batch(
            self, callback: Callable[[FrameBatch, List[float]], None]) -> None:
        """Register a batch-aware observer: gets ``(batch, starts)``
        with one wire-entry timestamp per member."""
        self._batch_observers.append(callback)

    def _notify(self, frame: Frame, now: float) -> None:
        self.frames_seen += 1
        for callback in self._observers:
            callback(frame, now)

    def _notify_batch(self, batch: FrameBatch, starts: List[float]) -> None:
        self.frames_seen += len(batch)
        if self._batch_observers:
            # An observer that registers a batch callback is expected to
            # also own any per-frame registration it made (it sees each
            # member exactly once, through the batch form).
            for callback in self._batch_observers:
                callback(batch, starts)
            return
        # Purely legacy observers: materialize members for them.
        for i, t in enumerate(starts):
            frame = batch.frame_at(i)
            for callback in self._observers:
                callback(frame, t)


class Link:
    """A unidirectional link with bandwidth and propagation delay.

    Frames submitted while the link is busy queue behind the in-flight
    frame (unbounded queue: the sender's NIC ring is modelled upstream).
    An optional :class:`OpticalTap` sees frames at transmit start, which
    matches a passive tap placed at the sender side.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Port,
        bandwidth_bps: float = 10 * GBPS,
        propagation_delay: float = 0.0,
        tap: Optional[OpticalTap] = None,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.sim = sim
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.tap = tap
        self.name = name
        self._busy_until = 0.0
        self.tx_frames = 0
        self.tx_bytes = 0

    def serialization_time(self, frame: Frame) -> float:
        """Time to clock the frame onto the wire (incl. 20 B phy overhead)."""
        return (frame.wire_size() + 20) * 8.0 / self.bandwidth_bps

    def send(self, frame: Frame, at: Optional[float] = None) -> float:
        """Schedule the frame for delivery; returns its arrival time.

        ``at`` lets burst emitters hand the link a frame whose wire
        entry time lies (analytically) in the near future: the frame is
        serialized from ``at`` instead of ``sim.now``, so a burst of N
        frames submitted in one event carries the same per-packet
        timestamps as N individually scheduled sends.
        """
        t = self.sim.now if at is None else at
        start = t if t > self._busy_until else self._busy_until
        if self.tap is not None:
            self.tap._notify(frame, start)
        tx_done = start + self.serialization_time(frame)
        self._busy_until = tx_done
        arrival = tx_done + self.propagation_delay
        frame.charge("wire", arrival - t)
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size()
        self.sim.schedule(arrival, self.dst.receive, frame)
        _obs.TRACER.link_send(self.name, frame, t, start, tx_done, arrival)
        return arrival

    def send_batch(self, batch: FrameBatch) -> float:
        """Serialize a whole batch; returns the last arrival time.

        Members enter the wire at their own (ascending) timestamps and
        chain through the busy period exactly as per-frame sends would;
        the batch is advanced to its per-member arrival times and
        delivered to ``dst`` in a single event at the first arrival.

        When two upstreams interleave batches on one link, members of
        the later-submitted batch serialize after the earlier batch's
        even if individual timestamps interleave -- a bounded
        reordering of the wire *occupancy* only (documented batch-path
        approximation; delivery counts are unaffected).
        """
        ts = batch.ts
        n = len(ts)
        wire = batch.frame.wire_size()
        ser = (wire + 20) * 8.0 / self.bandwidth_bps
        # A batch held back by its flush margin can reach the wire after
        # newer frames already went out.  Its members occupied the wire
        # back in their own window, so chain them from their first
        # timestamp rather than behind the newest transmission -- any
        # overlap with what was sent meanwhile is ignored (bounded
        # occupancy approximation at low utilization, exact otherwise).
        busy = self._busy_until
        if ts[0] < busy:
            busy = ts[0]
        starts = [0.0] * n
        for i in range(n):
            t = ts[i]
            start = t if t > busy else busy
            starts[i] = start
            busy = start + ser
            ts[i] = busy + self.propagation_delay
        if busy > self._busy_until:
            self._busy_until = busy
        self.tx_frames += n
        self.tx_bytes += wire * n
        if self.tap is not None:
            self.tap._notify_batch(batch, starts)
        # Held sub-batches (unbounded flush margins) may be handed to
        # the wire after their first member's arrival time has passed;
        # the content is analytic in ``ts`` either way, so deliver at
        # the first legal instant.
        now = self.sim.now
        self.sim.schedule(ts[0] if ts[0] > now else now,
                          self._deliver_batch, batch)
        return ts[-1]

    def send_interleaved(self, batches: List[FrameBatch]) -> None:
        """Serialize several batches whose timestamps interleave.

        The load generator emits one burst as a handful of per-flow
        batches whose emission timestamps interleave on the wire.
        Chaining all members in merged timestamp order reproduces the
        per-frame busy chain *exactly* (unlike back-to-back
        :meth:`send_batch` calls, which serialize whole batches);
        each batch is still delivered downstream in one event at its
        own first arrival.  Ties break by batch position, matching the
        generator's flow-index tie-break.
        """
        prop = self.propagation_delay
        busy = self._busy_until
        sers = []
        origs = []
        starts_per: List[List[float]] = []
        heap = []
        for b, batch in enumerate(batches):
            wire = batch.frame.wire_size()
            sers.append((wire + 20) * 8.0 / self.bandwidth_bps)
            origs.append(list(batch.ts))
            starts_per.append([0.0] * len(batch))
            self.tx_frames += len(batch)
            self.tx_bytes += wire * len(batch)
            if len(batch):
                heap.append((origs[b][0], b, 0))
        heapq.heapify(heap)
        while heap:
            t, b, i = heapq.heappop(heap)
            start = t if t > busy else busy
            starts_per[b][i] = start
            busy = start + sers[b]
            batches[b].ts[i] = busy + prop
            if i + 1 < len(origs[b]):
                heapq.heappush(heap, (origs[b][i + 1], b, i + 1))
        self._busy_until = busy
        for b, batch in enumerate(batches):
            if not len(batch):
                continue
            if self.tap is not None:
                self.tap._notify_batch(batch, starts_per[b])
            self.sim.schedule(batch.ts[0], self._deliver_batch, batch)

    def _deliver_batch(self, batch: FrameBatch) -> None:
        self.dst.receive_batch(batch, self.sim)
