"""Physical links and the passive optical taps of the measurement setup.

The paper's testbed connects the load generator and the device under test
with 10G short-range optics and observes both directions through passive
optical taps feeding an Endace DAG capture card (hardware timestamps).
:class:`Link` models serialization + propagation delay; :class:`OpticalTap`
gives measurement code the same vantage point the DAG card had.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import obs as _obs
from repro.net.interfaces import Port
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.units import GBPS


class OpticalTap:
    """A passive tap: observes every frame crossing a link direction.

    Observers get ``(frame, timestamp)`` -- the hardware-timestamp analog.
    """

    def __init__(self, name: str):
        self.name = name
        self._observers: List[Callable[[Frame, float], None]] = []
        self.frames_seen = 0

    def observe(self, callback: Callable[[Frame, float], None]) -> None:
        self._observers.append(callback)

    def _notify(self, frame: Frame, now: float) -> None:
        self.frames_seen += 1
        for callback in self._observers:
            callback(frame, now)


class Link:
    """A unidirectional link with bandwidth and propagation delay.

    Frames submitted while the link is busy queue behind the in-flight
    frame (unbounded queue: the sender's NIC ring is modelled upstream).
    An optional :class:`OpticalTap` sees frames at transmit start, which
    matches a passive tap placed at the sender side.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Port,
        bandwidth_bps: float = 10 * GBPS,
        propagation_delay: float = 0.0,
        tap: Optional[OpticalTap] = None,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.sim = sim
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        self.tap = tap
        self.name = name
        self._busy_until = 0.0
        self.tx_frames = 0
        self.tx_bytes = 0

    def serialization_time(self, frame: Frame) -> float:
        """Time to clock the frame onto the wire (incl. 20 B phy overhead)."""
        return (frame.wire_size() + 20) * 8.0 / self.bandwidth_bps

    def send(self, frame: Frame, at: Optional[float] = None) -> float:
        """Schedule the frame for delivery; returns its arrival time.

        ``at`` lets burst emitters hand the link a frame whose wire
        entry time lies (analytically) in the near future: the frame is
        serialized from ``at`` instead of ``sim.now``, so a burst of N
        frames submitted in one event carries the same per-packet
        timestamps as N individually scheduled sends.
        """
        t = self.sim.now if at is None else at
        start = t if t > self._busy_until else self._busy_until
        if self.tap is not None:
            self.tap._notify(frame, start)
        tx_done = start + self.serialization_time(frame)
        self._busy_until = tx_done
        arrival = tx_done + self.propagation_delay
        frame.charge("wire", arrival - t)
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size()
        self.sim.schedule(arrival, self.dst.receive, frame)
        _obs.TRACER.link_send(self.name, frame, t, start, tx_done, arrival)
        return arrival
