"""ARP: static entries, learning tables and the proxy-ARP responder.

MTS requires each tenant VM's default-gateway ARP entry to point at the
vswitch VM's gateway VF (paper section 3.2, "System support").  Two
mechanisms are modelled, matching the paper:

- **static entries** injected by the orchestrator into each tenant VM, and
- a **proxy-ARP / ARP-responder** in the vswitch, where the centralized
  controller pre-installs IP-to-MAC bindings and the vswitch answers ARP
  requests locally without flooding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.addresses import IPv4Address, MacAddress


@dataclass
class ArpEntry:
    mac: MacAddress
    static: bool = False
    created_at: float = 0.0


class ArpTable:
    """An IP-to-MAC mapping with static (pinned) and learned entries."""

    def __init__(self) -> None:
        self._entries: Dict[IPv4Address, ArpEntry] = {}

    def add_static(self, ip: IPv4Address, mac: MacAddress) -> None:
        """Pin ``ip -> mac``; static entries are never overwritten by
        learning (this is the defence the paper relies on)."""
        self._entries[ip] = ArpEntry(mac=mac, static=True)

    def learn(self, ip: IPv4Address, mac: MacAddress, now: float = 0.0) -> bool:
        """Record a dynamic binding; refuses to displace a static entry.

        Returns True if the binding was stored.
        """
        existing = self._entries.get(ip)
        if existing is not None and existing.static:
            return False
        self._entries[ip] = ArpEntry(mac=mac, static=False, created_at=now)
        return True

    def lookup(self, ip: IPv4Address) -> Optional[MacAddress]:
        entry = self._entries.get(ip)
        return entry.mac if entry is not None else None

    def is_static(self, ip: IPv4Address) -> bool:
        entry = self._entries.get(ip)
        return entry is not None and entry.static

    def flush_dynamic(self) -> int:
        """Drop all learned entries; returns how many were removed."""
        dynamic = [ip for ip, e in self._entries.items() if not e.static]
        for ip in dynamic:
            del self._entries[ip]
        return len(dynamic)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ip: IPv4Address) -> bool:
        return ip in self._entries


class ProxyArpResponder:
    """Controller-fed ARP responder living in the vswitch.

    The centralized controller installs every tenant binding it knows
    about; the responder then answers requests authoritatively and counts
    requests it could not answer (which a real deployment would punt to
    the controller).
    """

    def __init__(self) -> None:
        self._bindings: Dict[IPv4Address, MacAddress] = {}
        self.answered = 0
        self.missed = 0

    def install(self, ip: IPv4Address, mac: MacAddress) -> None:
        self._bindings[ip] = mac

    def withdraw(self, ip: IPv4Address) -> None:
        self._bindings.pop(ip, None)

    def respond(self, requested_ip: IPv4Address) -> Optional[MacAddress]:
        """Answer 'who-has requested_ip'; None when unknown."""
        mac = self._bindings.get(requested_ip)
        if mac is None:
            self.missed += 1
        else:
            self.answered += 1
        return mac

    def __len__(self) -> int:
        return len(self._bindings)
