"""Frame model: Ethernet + optional 802.1Q tag + IPv4 + L4 summary.

We model frames structurally rather than as byte buffers: the NIC's VEB
switch, the vswitch flow tables and the workload models all match on
header *fields*, and serializing real bytes would only slow the simulator
down.  A frame knows its on-wire size, carries measurement metadata
(creation timestamp, flow id) and an optional hop trace used by tests to
assert the exact ingress/egress chains of Fig. 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional

from repro.net.addresses import IPv4Address, MacAddress

_frame_ids = itertools.count()


def next_frame_id() -> int:
    """Allocate the next frame id from the shared counter."""
    return next(_frame_ids)


def reset_frame_ids() -> None:
    """Restart frame-id allocation at zero.

    Called at the start of every harnessed run so frame ids are a pure
    function of the run itself, not of how many frames earlier runs in
    the same process happened to create.  Per-frame jitter draws are
    keyed by frame id, so this is what keeps runs bit-identical across
    the sequential and process-pool sweep backends.
    """
    global _frame_ids
    _frame_ids = itertools.count()


#: 802.1Q tag size added on the wire when a frame is tagged.
VLAN_TAG_BYTES = 4


class EtherType(IntEnum):
    """EtherTypes the models care about."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100


class IpProto(IntEnum):
    """IP protocol numbers the workload models use."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(slots=True)
class Frame:
    """One Ethernet frame in flight.

    ``size_bytes`` is the untagged L2 frame size including FCS (the way
    the paper quotes packet sizes: 64 B, 512 B, 1500 B, 2048 B).  A VLAN
    tag, when present, adds 4 B on the wire (see :meth:`wire_size`).
    """

    src_mac: MacAddress
    dst_mac: MacAddress
    ethertype: EtherType = EtherType.IPV4
    vlan: Optional[int] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    proto: IpProto = IpProto.UDP
    src_port: int = 0
    dst_port: int = 0
    tunnel_id: Optional[int] = None
    #: VNI remembered after decapsulation (OVS's tunnel metadata): later
    #: pipeline stages can still key on it, and re-encapsulation is
    #: legal because the frame itself is no longer tunnelled.
    decap_vni: Optional[int] = None
    size_bytes: int = 64
    created_at: float = 0.0
    flow_id: int = 0
    tenant_id: Optional[int] = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    trace: List[str] = field(default_factory=list)
    #: PMU-style accounting: seconds spent per path component ("wire",
    #: "nic", "vswitch.service", "vswitch.wait", "vswitch.queue",
    #: "tenant", "vhost").  Populated by the timed dataplane; the
    #: latency-breakdown experiment aggregates it.
    timings: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 64:
            raise ValueError(f"Ethernet frame below minimum size: {self.size_bytes}")
        if self.vlan is not None and not 1 <= self.vlan <= 4094:
            raise ValueError(f"VLAN id out of range: {self.vlan}")

    # -- VLAN handling ------------------------------------------------

    def push_vlan(self, vlan: int) -> None:
        """Tag the frame (NIC ingress on a VLAN-assigned VF)."""
        if self.vlan is not None:
            raise ValueError(f"frame already tagged with VLAN {self.vlan}")
        if not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN id out of range: {vlan}")
        self.vlan = vlan

    def pop_vlan(self) -> int:
        """Strip the tag (NIC egress towards an access VF)."""
        if self.vlan is None:
            raise ValueError("frame is untagged")
        vlan, self.vlan = self.vlan, None
        return vlan

    # -- size ----------------------------------------------------------

    def wire_size(self) -> int:
        """Frame size on the wire, including the 802.1Q tag if present."""
        return self.size_bytes + (VLAN_TAG_BYTES if self.vlan is not None else 0)

    # -- trace ----------------------------------------------------------

    def stamp(self, where: str) -> None:
        """Append a hop to the frame's trace (for tests and debugging)."""
        self.trace.append(where)

    def charge(self, component: str, seconds: float) -> None:
        """Attribute ``seconds`` of this frame's latency to a component."""
        self.timings[component] = self.timings.get(component, 0.0) + seconds

    def copy(self) -> "Frame":
        """Independent copy with a fresh frame id and an empty trace."""
        return Frame(
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            ethertype=self.ethertype,
            vlan=self.vlan,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            proto=self.proto,
            src_port=self.src_port,
            dst_port=self.dst_port,
            tunnel_id=self.tunnel_id,
            decap_vni=self.decap_vni,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            flow_id=self.flow_id,
            tenant_id=self.tenant_id,
        )

    def replica(self) -> "Frame":
        """Copy that *keeps* the frame id (fresh trace/timings).

        Used by the batched fast path when a batch forks: every
        sub-batch needs its own mutable exemplar header, but members
        keep their identity.  Unlike :meth:`copy` this must not draw
        from the frame-id counter -- the oracle path never forks, and
        the two paths have to allocate ids identically.
        """
        return Frame(
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            ethertype=self.ethertype,
            vlan=self.vlan,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            proto=self.proto,
            src_port=self.src_port,
            dst_port=self.dst_port,
            tunnel_id=self.tunnel_id,
            decap_vni=self.decap_vni,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            flow_id=self.flow_id,
            tenant_id=self.tenant_id,
            frame_id=self.frame_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vlan = f" vlan={self.vlan}" if self.vlan is not None else ""
        ips = ""
        if self.src_ip is not None or self.dst_ip is not None:
            ips = f" {self.src_ip}->{self.dst_ip}"
        return (
            f"<Frame #{self.frame_id} {self.src_mac}->{self.dst_mac}{vlan}"
            f"{ips} {self.size_bytes}B>"
        )


class FrameBatch:
    """A burst of same-flow frames in struct-of-arrays form.

    One mutable *exemplar* :class:`Frame` carries the headers every
    member shares (same flow => same headers; VLAN pushes/pops and MAC
    rewrites apply to the exemplar once instead of N times), plus
    parallel arrays for the only things that differ per member:

    - ``frame_ids`` -- member identities (latency pairing, jitter keys),
    - ``ts`` -- where each member *is* in time: mutated in place as the
      batch advances through analytic hops,
    - ``created_at`` -- original emission times (immutable).

    ``ts`` is kept sorted ascending; hops with per-member jitter re-sort
    via :meth:`advance_per_member`.  The batch contract throughout the
    chain: an event handling a batch fires at a time <= ``ts[0]``.

    ``fused_sink``, when set, marks the batch as an *accounting replay*:
    its members' downstream admissions were already registered
    analytically by a fused route, and the receiving bridge must replay
    counters/metering for the traversal and hand the headers to the sink
    instead of dispatching again.
    """

    __slots__ = ("frame", "frame_ids", "ts", "created_at", "fused_sink")

    def __init__(self, frame: Frame, frame_ids: List[int], ts: List[float],
                 created_at: Optional[List[float]] = None) -> None:
        self.frame = frame
        self.frame_ids = frame_ids
        self.ts = ts
        self.created_at = created_at if created_at is not None else list(ts)
        self.fused_sink = None

    def __len__(self) -> int:
        return len(self.frame_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FrameBatch n={len(self.frame_ids)} {self.frame!r} "
                f"ts[0]={self.ts[0] if self.ts else None}>")

    def advance(self, delay: float) -> None:
        """Move every member forward by the same analytic ``delay``."""
        ts = self.ts
        for i in range(len(ts)):
            ts[i] += delay

    def advance_per_member(self, delays: List[float]) -> None:
        """Per-member delays (jittered hops): advance and re-sort."""
        ts = self.ts
        for i, d in enumerate(delays):
            ts[i] += d
        if any(ts[i] > ts[i + 1] for i in range(len(ts) - 1)):
            order = sorted(range(len(ts)), key=ts.__getitem__)
            self.ts = [ts[i] for i in order]
            self.frame_ids = [self.frame_ids[i] for i in order]
            self.created_at = [self.created_at[i] for i in order]

    def fork(self, indices: List[int]) -> "FrameBatch":
        """Sub-batch of ``indices`` with its own exemplar header."""
        return FrameBatch(
            self.frame.replica(),
            [self.frame_ids[i] for i in indices],
            [self.ts[i] for i in indices],
            [self.created_at[i] for i in indices],
        )

    def fanout_copies(self, m: int) -> List["FrameBatch"]:
        """``m`` batch copies with *fresh* member ids (fan-out).

        Ids are allocated frame-major -- member 0's ``m`` copies first,
        then member 1's, and so on -- because that is the order the
        per-frame path's ``Frame.copy()`` loop draws them in (each frame
        copies for every extra egress before the next frame arrives).
        Keeping the draw order identical keeps the shared id counter in
        lockstep, so copies carry oracle-identical ids too.
        """
        n = len(self.frame_ids)
        ids: List[List[int]] = [[0] * n for _ in range(m)]
        for i in range(n):
            for j in range(m):
                ids[j][i] = next(_frame_ids)
        out = []
        for j in range(m):
            clone = self.frame.replica()
            clone.frame_id = ids[j][0]
            out.append(FrameBatch(clone, ids[j], list(self.ts),
                                  list(self.created_at)))
        return out

    def frame_at(self, i: int) -> Frame:
        """Materialize member ``i`` as a standalone :class:`Frame`."""
        clone = self.frame.replica()
        clone.frame_id = self.frame_ids[i]
        clone.created_at = self.created_at[i]
        return clone
