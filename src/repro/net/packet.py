"""Frame model: Ethernet + optional 802.1Q tag + IPv4 + L4 summary.

We model frames structurally rather than as byte buffers: the NIC's VEB
switch, the vswitch flow tables and the workload models all match on
header *fields*, and serializing real bytes would only slow the simulator
down.  A frame knows its on-wire size, carries measurement metadata
(creation timestamp, flow id) and an optional hop trace used by tests to
assert the exact ingress/egress chains of Fig. 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional

from repro.net.addresses import IPv4Address, MacAddress

_frame_ids = itertools.count()

#: 802.1Q tag size added on the wire when a frame is tagged.
VLAN_TAG_BYTES = 4


class EtherType(IntEnum):
    """EtherTypes the models care about."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100


class IpProto(IntEnum):
    """IP protocol numbers the workload models use."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass
class Frame:
    """One Ethernet frame in flight.

    ``size_bytes`` is the untagged L2 frame size including FCS (the way
    the paper quotes packet sizes: 64 B, 512 B, 1500 B, 2048 B).  A VLAN
    tag, when present, adds 4 B on the wire (see :meth:`wire_size`).
    """

    src_mac: MacAddress
    dst_mac: MacAddress
    ethertype: EtherType = EtherType.IPV4
    vlan: Optional[int] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    proto: IpProto = IpProto.UDP
    src_port: int = 0
    dst_port: int = 0
    tunnel_id: Optional[int] = None
    #: VNI remembered after decapsulation (OVS's tunnel metadata): later
    #: pipeline stages can still key on it, and re-encapsulation is
    #: legal because the frame itself is no longer tunnelled.
    decap_vni: Optional[int] = None
    size_bytes: int = 64
    created_at: float = 0.0
    flow_id: int = 0
    tenant_id: Optional[int] = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    trace: List[str] = field(default_factory=list)
    #: PMU-style accounting: seconds spent per path component ("wire",
    #: "nic", "vswitch.service", "vswitch.wait", "vswitch.queue",
    #: "tenant", "vhost").  Populated by the timed dataplane; the
    #: latency-breakdown experiment aggregates it.
    timings: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 64:
            raise ValueError(f"Ethernet frame below minimum size: {self.size_bytes}")
        if self.vlan is not None and not 1 <= self.vlan <= 4094:
            raise ValueError(f"VLAN id out of range: {self.vlan}")

    # -- VLAN handling ------------------------------------------------

    def push_vlan(self, vlan: int) -> None:
        """Tag the frame (NIC ingress on a VLAN-assigned VF)."""
        if self.vlan is not None:
            raise ValueError(f"frame already tagged with VLAN {self.vlan}")
        if not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN id out of range: {vlan}")
        self.vlan = vlan

    def pop_vlan(self) -> int:
        """Strip the tag (NIC egress towards an access VF)."""
        if self.vlan is None:
            raise ValueError("frame is untagged")
        vlan, self.vlan = self.vlan, None
        return vlan

    # -- size ----------------------------------------------------------

    def wire_size(self) -> int:
        """Frame size on the wire, including the 802.1Q tag if present."""
        return self.size_bytes + (VLAN_TAG_BYTES if self.vlan is not None else 0)

    # -- trace ----------------------------------------------------------

    def stamp(self, where: str) -> None:
        """Append a hop to the frame's trace (for tests and debugging)."""
        self.trace.append(where)

    def charge(self, component: str, seconds: float) -> None:
        """Attribute ``seconds`` of this frame's latency to a component."""
        self.timings[component] = self.timings.get(component, 0.0) + seconds

    def copy(self) -> "Frame":
        """Independent copy with a fresh frame id and an empty trace."""
        return Frame(
            src_mac=self.src_mac,
            dst_mac=self.dst_mac,
            ethertype=self.ethertype,
            vlan=self.vlan,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            proto=self.proto,
            src_port=self.src_port,
            dst_port=self.dst_port,
            tunnel_id=self.tunnel_id,
            decap_vni=self.decap_vni,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            flow_id=self.flow_id,
            tenant_id=self.tenant_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vlan = f" vlan={self.vlan}" if self.vlan is not None else ""
        ips = ""
        if self.src_ip is not None or self.dst_ip is not None:
            ips = f" {self.src_ip}->{self.dst_ip}"
        return (
            f"<Frame #{self.frame_id} {self.src_mac}->{self.dst_mac}{vlan}"
            f"{ips} {self.size_bytes}B>"
        )
