"""MAC and IPv4 address types with allocators.

Implemented from scratch (no ``ipaddress`` import) so the types carry
exactly the semantics the NIC and vswitch models need: hashability,
canonical text form, locally-administered MAC generation, and subnet
iteration for tenant address pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit Ethernet MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 48:
            raise AddressError(f"MAC value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (case-insensitive)."""
        parts = text.strip().split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address: {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError as exc:
            raise AddressError(f"malformed MAC address: {text!r}") from exc
        if any(not 0 <= o <= 0xFF for o in octets):
            raise AddressError(f"malformed MAC address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True for group addresses (I/G bit set), including broadcast."""
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        return bool((self.value >> 40) & 0x02)

    def __hash__(self) -> int:
        # Hot path: addresses key every fast-path cache, and hashing the
        # raw int skips the tuple the generated dataclass hash builds.
        return hash(self.value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{o:02x}" for o in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress((1 << 48) - 1)


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 32:
            raise AddressError(f"IPv4 value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad ``a.b.c.d``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        try:
            octets = [int(p, 10) for p in parts]
        except ValueError as exc:
            raise AddressError(f"malformed IPv4 address: {text!r}") from exc
        if any(not 0 <= o <= 255 for o in octets):
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self.value & mask) == (network.value & mask)

    def offset(self, delta: int) -> "IPv4Address":
        """Address ``delta`` positions away (used by allocators)."""
        return IPv4Address(self.value + delta)

    def __hash__(self) -> int:
        # Hot path: see MacAddress.__hash__.
        return hash(self.value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(24, -8, -8)]
        return ".".join(str(o) for o in octets)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


class MacAllocator:
    """Hands out unique locally-administered unicast MACs.

    The allocator brands each address with an OUI-like prefix so addresses
    read meaningfully in traces (``02:4d:54:...`` = locally administered,
    'MT' for MTS).
    """

    def __init__(self, prefix: int = 0x024D54) -> None:
        if not 0 <= prefix < 1 << 24:
            raise AddressError(f"prefix out of range: {prefix:#x}")
        if (prefix >> 16) & 0x01:
            raise AddressError("allocator prefix must be unicast (I/G bit clear)")
        self._prefix = prefix
        self._next = 0

    def allocate(self) -> MacAddress:
        if self._next >= 1 << 24:
            raise AddressError("MAC allocator exhausted")
        mac = MacAddress((self._prefix << 24) | self._next)
        self._next += 1
        return mac


class IpAllocator:
    """Hands out host addresses from a subnet, skipping network/broadcast."""

    def __init__(self, network: str, prefix_len: int) -> None:
        if not 0 <= prefix_len <= 30:
            raise AddressError(f"unusable prefix length: {prefix_len}")
        self.network = IPv4Address.parse(network)
        self.prefix_len = prefix_len
        self._next_host = 1
        self._max_host = (1 << (32 - prefix_len)) - 2

    def allocate(self) -> IPv4Address:
        if self._next_host > self._max_host:
            raise AddressError(f"IP allocator exhausted for {self.network}/{self.prefix_len}")
        addr = self.network.offset(self._next_host)
        self._next_host += 1
        return addr

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate all assignable host addresses in the subnet."""
        for host in range(1, self._max_host + 1):
            yield self.network.offset(host)
