"""Leaf/ToR/spine fabric switches interconnecting servers.

The paper's chains describe traffic "entering the server through the
NIC fabric port" -- this is the other side of that port: L2 switches
with MAC learning plus controller-installed static entries (the
centralized controller knows every server's In/Out VF MACs, so it
programs them like an EVPN control plane would; In/Out MACs never
appear as frame *sources*, hence cannot be learned).

One :class:`FabricSwitch` is the original single-leaf testbed; the
fabric layer composes several of them into a two-tier ToR/spine tree
via :meth:`FabricSwitch.trunk` (see ``repro.fabric.topology`` for the
capacity model of the same tree).

Ports are wired with :class:`~repro.net.link.Link` objects; frames to
unknown destinations flood.  Every port keeps rx/tx/drop counters so
fabric hot spots are observable (``repro.obs.harvest_fabric`` exports
them through the metrics registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import MacAddress
from repro.net.interfaces import Port
from repro.net.link import Link
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.units import GBPS, USEC

#: Store-and-forward latency of a fabric switch.
FABRIC_LATENCY = 0.5 * USEC


@dataclass
class _FabricPort:
    index: int
    link: Optional[Link] = None  # towards the attached device
    rx_frames: int = 0
    tx_frames: int = 0
    #: Frames this port should have transmitted but could not (no link
    #: attached / unwired unicast destination).
    tx_drops: int = 0


class FabricSwitch:
    """An L2 switch with learning + static (controller) entries."""

    def __init__(self, sim: Simulator, num_ports: int = 8,
                 name: str = "leaf0") -> None:
        if num_ports < 2:
            raise ValueError("a fabric switch needs at least two ports")
        self.sim = sim
        self.name = name
        self.ports: List[_FabricPort] = [_FabricPort(i)
                                         for i in range(num_ports)]
        self._static: Dict[MacAddress, int] = {}
        self._learned: Dict[MacAddress, int] = {}
        self.floods = 0
        self.forwarded = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, port_index: int, bandwidth_bps: float = 10 * GBPS):
        """Create the switch side of a port: returns ``(rx_port, set_link)``
        where ``rx_port`` is where the device's link should deliver and
        ``set_link`` attaches the switch's outbound link to the device."""
        port = self.ports[port_index]
        rx = Port(f"{self.name}.p{port_index}",
                  lambda frame, i=port_index: self._ingress(i, frame))

        def set_link(link: Link) -> None:
            port.link = link

        return rx, set_link

    def trunk(self, my_port: int, peer: "FabricSwitch", peer_port: int,
              bandwidth_bps: float = 40 * GBPS) -> Tuple[Link, Link]:
        """Interconnect two switches (e.g. a ToR uplink to a spine):
        one link per direction; returns ``(towards_peer, towards_self)``."""
        if peer is self:
            raise ValueError("a switch cannot trunk to itself")
        my_rx, my_set = self.attach(my_port)
        peer_rx, peer_set = peer.attach(peer_port)
        up = Link(self.sim, peer_rx, bandwidth_bps=bandwidth_bps,
                  name=f"trunk.{self.name}.p{my_port}-{peer.name}")
        down = Link(self.sim, my_rx, bandwidth_bps=bandwidth_bps,
                    name=f"trunk.{peer.name}.p{peer_port}-{self.name}")
        my_set(up)
        peer_set(down)
        return up, down

    # -- control plane ----------------------------------------------------

    def install_static(self, mac: MacAddress, port_index: int) -> None:
        """Controller-programmed entry (e.g. a server's In/Out VF MAC)."""
        if not 0 <= port_index < len(self.ports):
            raise ValueError(f"no port {port_index}")
        self._static[mac] = port_index

    # -- observability -----------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Cumulative switch counters, flat and JSON-safe (the delta
        harvest in ``repro.obs`` keys its registry export off these)."""
        totals: Dict[str, float] = {
            "floods": self.floods,
            "forwarded": self.forwarded,
        }
        for port in self.ports:
            totals[f"p{port.index}.rx"] = port.rx_frames
            totals[f"p{port.index}.tx"] = port.tx_frames
            totals[f"p{port.index}.tx_drops"] = port.tx_drops
        return totals

    # -- dataplane ----------------------------------------------------------

    def _ingress(self, in_port: int, frame: Frame) -> None:
        self.ports[in_port].rx_frames += 1
        frame.stamp(f"{self.name}.p{in_port}.rx")
        if not frame.src_mac.is_multicast and frame.src_mac not in self._static:
            self._learned[frame.src_mac] = in_port
        self.sim.call_later(FABRIC_LATENCY, self._forward, in_port, frame)

    def _lookup(self, mac: MacAddress) -> Optional[int]:
        if mac in self._static:
            return self._static[mac]
        return self._learned.get(mac)

    def _forward(self, in_port: int, frame: Frame) -> None:
        out = None if frame.dst_mac.is_multicast else self._lookup(frame.dst_mac)
        if out is None:
            self.floods += 1
            targets = [p for p in self.ports
                       if p.index != in_port and p.link is not None]
        elif out == in_port:
            return
        else:
            if self.ports[out].link is None:
                self.ports[out].tx_drops += 1
                return
            targets = [self.ports[out]]
        self.forwarded += 1
        for i, port in enumerate(targets):
            copy = frame if i == len(targets) - 1 else frame.copy()
            copy.stamp(f"{self.name}.p{port.index}.tx")
            port.tx_frames += 1
            port.link.send(copy)
