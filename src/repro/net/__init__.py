"""Network substrate: addresses, frames, ARP, ports, links and taps."""

from repro.net.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    MacAddress,
    IpAllocator,
    MacAllocator,
)
from repro.net.arp import ArpTable, ProxyArpResponder
from repro.net.interfaces import Port, PortPair, CountingPort
from repro.net.link import Link, OpticalTap
from repro.net.packet import EtherType, Frame, IpProto

__all__ = [
    "BROADCAST_MAC",
    "IPv4Address",
    "MacAddress",
    "IpAllocator",
    "MacAllocator",
    "ArpTable",
    "ProxyArpResponder",
    "Port",
    "PortPair",
    "CountingPort",
    "Link",
    "OpticalTap",
    "EtherType",
    "Frame",
    "IpProto",
]
