"""Command-line interface: drive the framework like the paper's scripts.

::

    python -m repro describe   --level l2 --vms 2
    python -m repro plan       --level l2 --vms 4 --dpdk --mode isolated
    python -m repro throughput --level l1 --scenario p2v
    python -m repro latency    --level baseline --scenario p2v
    python -m repro audit      --level l2 --vms 4
    python -m repro survey
    python -m repro experiments --only fig5-throughput-shared
    python -m repro sweep      --levels baseline l1 l2 --tenants 2 4 \
                               --jobs 4 --out sweep.jsonl

Every subcommand builds the requested deployment from scratch (the
simulated testbed is cheap), so commands compose without shared state.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.deployment import build_deployment, plan_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.units import MPPS, USEC

_LEVELS = {
    "baseline": SecurityLevel.BASELINE,
    "l1": SecurityLevel.LEVEL_1,
    "l2": SecurityLevel.LEVEL_2,
}


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", metavar="SPEC.json",
                        help="load the deployment spec from a JSON file "
                             "(overrides the other spec flags)")
    parser.add_argument("--level", choices=sorted(_LEVELS), default="l1",
                        help="security level (default: l1)")
    parser.add_argument("--vms", type=int, default=None,
                        help="vswitch VMs for Level-2 (default: 2)")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--mode", choices=["shared", "isolated"],
                        default="shared")
    parser.add_argument("--dpdk", action="store_true",
                        help="Level-3 user-space datapath (isolated only)")
    parser.add_argument("--baseline-cores", type=int, default=1)
    parser.add_argument("--ports", type=int, default=2, choices=[1, 2])
    parser.add_argument("--scenario", choices=["p2p", "p2v", "v2v"],
                        default="p2v")


def _spec_from(args: argparse.Namespace) -> DeploymentSpec:
    if getattr(args, "config", None):
        import json
        with open(args.config) as handle:
            return DeploymentSpec.from_dict(json.load(handle))
    level = _LEVELS[args.level]
    vms = args.vms
    if vms is None:
        vms = 2 if level is SecurityLevel.LEVEL_2 else 1
    return DeploymentSpec(
        level=level,
        num_tenants=args.tenants,
        num_vswitch_vms=vms,
        resource_mode=(ResourceMode.ISOLATED if args.mode == "isolated"
                       or args.dpdk else ResourceMode.SHARED),
        user_space=args.dpdk,
        baseline_cores=args.baseline_cores,
        nic_ports=args.ports,
    )


def _scenario_from(args: argparse.Namespace) -> TrafficScenario:
    return TrafficScenario(args.scenario)


def cmd_describe(args: argparse.Namespace) -> int:
    deployment = build_deployment(_spec_from(args), _scenario_from(args))
    print(deployment.describe())
    print()
    print(deployment.resource_report().row())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_deployment(_spec_from(args), _scenario_from(args))
    print(plan.dump())
    print(f"\n{len(plan)} primitive operations ({plan.summary()})")
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    from repro.perfmodel.paths import throughput
    scenario = _scenario_from(args)
    deployment = build_deployment(_spec_from(args), scenario)
    result = throughput(deployment, scenario,
                        frame_bytes=args.frame_bytes)
    print(f"{deployment.spec.label} {scenario.value} "
          f"({args.frame_bytes} B frames)")
    for flow, rate in sorted(result.rates_pps.items()):
        print(f"  {flow}: {rate / MPPS:.3f} Mpps "
              f"(bottleneck: {result.bottleneck_of[flow]})")
    print(f"aggregate: {result.aggregate_pps / MPPS:.3f} Mpps")
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.traffic.harness import TestbedHarness
    scenario = _scenario_from(args)
    deployment = build_deployment(_spec_from(args), scenario,
                                  seed=args.seed)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(
        rate_per_flow_pps=args.rate_pps / args.tenants,
        frame_bytes=args.frame_bytes)
    result = harness.run(duration=args.duration,
                         warmup=args.duration / 5)
    stats = result.latency_stats()
    print(f"{deployment.spec.label} {scenario.value} @ {args.rate_pps:.0f} pps, "
          f"{args.frame_bytes} B ({stats.count} samples)")
    print(f"  median {stats.median / USEC:.1f} us   "
          f"p25/p75 {stats.p25 / USEC:.1f}/{stats.p75 / USEC:.1f} us   "
          f"p99 {stats.p99 / USEC:.1f} us")
    print(f"  delivered {result.delivered}/{result.sent} "
          f"(loss {result.loss_fraction:.2%})")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.verification import audit_deployment
    from repro.security import assess_compromise, score_principles, tcb_report
    deployment = build_deployment(_spec_from(args), _scenario_from(args))
    print(score_principles(deployment).row())
    print(tcb_report(deployment).row())
    assessment = assess_compromise(deployment)
    print(f"exploits to host: {assessment.exploits_to_host}; "
          f"vswitch blast radius: {assessment.vswitch_blast_radius}; "
          f"extra-layer rule: "
          f"{'met' if assessment.meets_extra_layer_rule else 'NOT met'}")
    report = audit_deployment(deployment)
    print(report.render())
    return 0 if report.ok else 2


def cmd_survey(args: argparse.Namespace) -> int:
    from repro.security.survey import render_table, survey_statistics
    print(render_table())
    stats = survey_statistics()
    print(f"\nmonolithic: {stats['monolithic_fraction']:.0%}  "
          f"co-located: {stats['colocated_fraction']:.0%}  "
          f"kernel-involved: {stats['kernel_involved_fraction']:.0%}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.experiments.runner import experiment_plan, extension_plan
    plan = experiment_plan(quick=not args.full, seed=args.seed)
    if args.extensions:
        plan.extend(extension_plan(quick=not args.full, seed=args.seed))
    available = [key for key, _ in plan]
    if args.only:
        plan = [(k, t) for k, t in plan if args.only in k]
        if not plan:
            print(f"no experiment matches {args.only!r}; available:",
                  ", ".join(sorted(available)), file=sys.stderr)
            return 1
    for key, thunk in sorted(plan):
        before = obs.REGISTRY.snapshot()
        print(thunk().render())
        # The harnesses inside the thunk harvested their cache counters
        # into the registry; the delta is this experiment's share.
        line = obs.cache_efficacy_line(obs.REGISTRY, before)
        if line:
            print(line)
        print()
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Run one traced deployment and print/export its telemetry."""
    from repro import obs
    from repro.obs.export import (
        drop_report,
        journey_report,
        tenant_hop_table,
        tenant_latency_table,
        write_prometheus,
        write_spans_jsonl,
    )
    from repro.traffic.harness import TestbedHarness
    scenario = _scenario_from(args)
    deployment = build_deployment(_spec_from(args), scenario,
                                  seed=args.seed)
    tracer = obs.enable_tracing(deployment.sim, capacity=args.span_capacity)
    try:
        harness = TestbedHarness(deployment)
        harness.configure_tenant_flows(
            rate_per_flow_pps=args.rate_pps / args.tenants,
            frame_bytes=args.frame_bytes)
        result = harness.run(duration=args.duration,
                             warmup=args.duration / 5)
        print(f"{deployment.spec.label} {scenario.value} @ "
              f"{args.rate_pps:.0f} pps for {args.duration} s: "
              f"delivered {result.delivered}/{result.sent}, "
              f"{len(tracer.spans)} spans over "
              f"{len(tracer.trace_ids())} traces")
        print()
        print(tenant_latency_table(tracer).render())
        print()
        print(tenant_hop_table(tracer).render())
        drops = drop_report(tracer)
        if drops:
            print()
            print("drops:")
            for line in drops:
                print(f"  {line}")
        line = obs.cache_efficacy_line(obs.REGISTRY)
        if line:
            print()
            print(line)
        for trace_id in tracer.trace_ids()[:args.journeys]:
            print()
            print(journey_report(tracer.journey(trace_id)))
        if args.trace_out:
            count = write_spans_jsonl(tracer, args.trace_out)
            print(f"\nwrote {count} spans to {args.trace_out}")
        if args.metrics_out:
            # Merge the deployment gauges into the run's global registry
            # so the snapshot also carries histogram buckets and pool
            # gauges collected during the run, not just point-in-time
            # deployment state.
            registry = obs.deployment_metrics(deployment,
                                              registry=obs.REGISTRY)
            write_prometheus(registry, args.metrics_out)
            print(f"wrote metrics snapshot to {args.metrics_out}")
    finally:
        obs.disable_tracing()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Cartesian sweep over deployment axes through the scenario engine."""
    from repro import obs
    from repro.scenario import (
        Engine,
        NullStore,
        ProcessPoolBackend,
        ResultStore,
        SequentialBackend,
        SweepGrid,
        build_grid,
        sweep_table,
        write_jsonl,
    )
    faults = None
    if args.faults:
        import json
        from repro.faults.plan import FaultPlan
        with open(args.faults) as handle:
            faults = FaultPlan.from_dict(json.load(handle))
    grid = SweepGrid(
        workload=args.workload,
        levels=tuple(args.levels),
        compartments=tuple(args.vms),
        tenants=tuple(args.tenants),
        datapaths=tuple(args.datapaths),
        modes=tuple(args.modes),
        traffic=tuple(args.traffic),
        duration=args.duration,
        frame_bytes=args.frame_bytes,
        rate_pps=args.rate_pps,
        seed=args.seed,
        faults=faults,
        servers=tuple(args.servers),
        placements=tuple(args.placements),
    )
    specs, skipped = build_grid(grid)
    for point in skipped:
        print(f"[skip] {point.point_id}: {point.reason}", file=sys.stderr)
    if not specs:
        print("sweep is empty: every grid point was skipped",
              file=sys.stderr)
        return 1
    backend = (SequentialBackend() if args.jobs == 1
               else ProcessPoolBackend(max_workers=args.jobs,
                                       timeout=args.timeout,
                                       chunk=args.chunk))
    store = NullStore() if args.no_cache else ResultStore(args.cache_dir)
    engine = Engine(backend=backend, store=store)
    try:
        results = engine.run(specs)
    finally:
        if hasattr(backend, "close"):
            backend.close()
    print(sweep_table(grid, specs, results).render())
    computed = sum(1 for r in results if not r.cached)
    cached = len(results) - computed
    line = f"{len(results)} points: {computed} computed, {cached} cached"
    if not args.no_cache:
        line += f" (store: {store.root}, {len(store)} entries)"
    print(line)
    efficacy = obs.cache_efficacy_line(obs.REGISTRY)
    if efficacy:
        print(efficacy)
    if args.out:
        with open(args.out, "w") as handle:
            count = write_jsonl(handle, specs, results)
        print(f"wrote {count} points to {args.out}")
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    """Place a tenant mix on a fabric and run the hybrid simulation."""
    import time
    from repro import obs
    from repro.errors import ValidationError
    from repro.fabric import (FabricDeployment, FabricTopology, POLICIES,
                              place, placement_cost)
    from repro.fabric.workload import (pick_probe_flows, pick_study_flows,
                                       synth_reqs)
    from repro.measure.reporting import Series, Table
    from repro.units import GBPS

    level = _LEVELS[args.level]
    vms = args.vms if args.vms is not None else (
        2 if level is SecurityLevel.LEVEL_2 else 1)
    spec = DeploymentSpec(level=level, num_tenants=max(4, 2 * vms),
                          num_vswitch_vms=vms, nic_ports=1)
    topology = FabricTopology(
        num_servers=args.servers,
        servers_per_rack=args.servers_per_rack,
        server_link_bps=args.link_gbps * GBPS,
        tor_uplink_bps=args.tor_uplink_gbps * GBPS)
    reqs = synth_reqs(args.tenants, args.seed,
                      demand_pps=args.demand_pps,
                      frame_bytes=args.frame_bytes,
                      zone_size=args.zone_size)
    if args.study_mode == "probes":
        flows = pick_probe_flows(reqs, args.study_flows, args.demand_pps)
    else:
        flows = pick_study_flows(reqs, args.study_flows)

    compartments = max(1, spec.num_compartments)
    table = Table(title=f"placement of {args.tenants} tenants on "
                        f"{args.servers} servers "
                        f"({topology.num_racks} racks)",
                  fmt=lambda v: f"{v:.4g}")
    for policy in sorted(POLICIES):
        try:
            candidate = place(
                reqs, topology, policy=policy,
                compartments_per_server=compartments,
                tenants_per_compartment=args.tenants_per_compartment)
        except ValidationError as exc:
            print(f"[skip] {policy}: {exc}", file=sys.stderr)
            continue
        cost = placement_cost(reqs, candidate, topology)
        series = Series(label=policy + (" *" if policy == args.placement
                                        else ""))
        series.add("hop_cost", cost.hop_cost)
        series.add("inter_server_pps", cost.inter_server_pps)
        series.add("max_link_util", cost.max_link_utilization)
        series.add("servers_used", len(candidate.servers_used()))
        table.add_series(series)
    print(table.render())

    deployment = FabricDeployment(
        spec, topology, reqs, flows, placement=args.placement,
        tenants_per_compartment=args.tenants_per_compartment,
        seed=args.seed)
    warmup = args.duration / 4.0
    start = time.perf_counter()
    hybrid = deployment.run_hybrid(duration=args.duration, warmup=warmup)
    hybrid_wall = time.perf_counter() - start
    fabric_delta = obs.harvest_fabric(deployment.last_cloud.switches,
                                      obs.REGISTRY)

    flow_table = Table(title=f"{len(flows)} flows under study "
                             f"({args.study_mode}; hybrid DES over "
                             f"{hybrid.des_servers} of {args.servers} "
                             f"servers)",
                       fmt=lambda v: f"{v:.4g}")
    for flow in flows:
        series = Series(label=flow.name)
        series.add("offered_pps", flow.rate_pps)
        series.add("delivered_pps", hybrid.delivered_pps[flow.name])
        series.add("fluid_pps", hybrid.predicted_pps.get(flow.name, 0.0))
        flow_table.add_series(series)
    print()
    print(flow_table.render())

    print()
    print("hottest pools (background + study, fluid):")
    for name, utilization in hybrid.bottlenecks(top=5):
        print(f"  {name}: {utilization:.1%}")
    print(f"fluid vs DES on study aggregate: "
          f"{hybrid.fluid_vs_des_error:.2%} "
          f"({hybrid.des_events} DES events, {hybrid_wall:.2f} s wall)")
    forwarded = fabric_delta.get("forwarded", 0.0)
    floods = fabric_delta.get("floods", 0.0)
    if forwarded or floods:
        print(f"fabric: {forwarded:.0f} forwarded, {floods:.0f} flooded")

    error = hybrid.fluid_vs_des_error
    if args.validate:
        start = time.perf_counter()
        pure = deployment.run_pure_des(duration=args.duration,
                                       warmup=warmup)
        pure_wall = time.perf_counter() - start
        aggregate = pure.aggregate_delivered_pps
        error = (abs(hybrid.aggregate_delivered_pps - aggregate)
                 / aggregate if aggregate else 0.0)
        speedup = pure_wall / max(hybrid_wall, 1e-9)
        print(f"pure DES oracle: {aggregate:.0f} pps aggregate, "
              f"{pure.des_events} events, {pure_wall:.2f} s wall")
        print(f"hybrid vs pure DES: {error:.2%} on aggregate study pps, "
              f"{speedup:.1f}x wall-clock speedup")
    if args.check and error > args.tolerance:
        print(f"fabric check FAILED: {error:.2%} disagreement exceeds "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 2
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault campaign across security levels: blast radius, MTTR."""
    import json
    from repro.faults.campaign import scenarios, tabulate
    from repro.faults.plan import FaultPlan, scripted_crash
    from repro.scenario import (
        Engine,
        NullStore,
        ProcessPoolBackend,
        ResultStore,
        SequentialBackend,
    )
    if args.plan:
        with open(args.plan) as handle:
            plan = FaultPlan.from_dict(json.load(handle))
    else:
        plan = scripted_crash(compartment=args.crash_index,
                              at=args.duration / 3.0,
                              heartbeat=args.heartbeat,
                              warm_standby=args.warm_standby)
    specs = scenarios(duration=args.duration, seed=args.seed, plan=plan)
    backend = (SequentialBackend() if args.jobs in (None, 1)
               else ProcessPoolBackend(max_workers=args.jobs,
                                       chunk=args.chunk))
    store = NullStore() if args.no_cache else ResultStore(args.cache_dir)
    try:
        results = Engine(backend=backend, store=store).run(specs)
    finally:
        if hasattr(backend, "close"):
            backend.close()
    print(tabulate(results).render())
    repaired = sum(r.values.get("repaired", 0) for r in results)
    violations = sum(r.values.get("violations", 0) for r in results)
    cached = sum(1 for r in results if r.cached)
    print(f"{len(results)} campaigns ({cached} cached): "
          f"{repaired:.0f} repairs, {violations:.0f} invariant violations")
    if args.events_out:
        count = 0
        with open(args.events_out, "w") as handle:
            for spec, result in zip(specs, results):
                for event in result.events:
                    handle.write(json.dumps(
                        {"label": spec.display_label, **event},
                        sort_keys=True, separators=(",", ":")) + "\n")
                    count += 1
        print(f"wrote {count} events to {args.events_out}")
    if args.check and (repaired == 0 or violations > 0):
        print(f"chaos check FAILED: {repaired:.0f} repairs, "
              f"{violations:.0f} violations", file=sys.stderr)
        return 2
    return 0


def cmd_billing(args: argparse.Namespace) -> int:
    """Meter the noisy-neighbor workload across Baseline/L1/L2/L3,
    price it, audit reconciliation, and show who pays for faults."""
    import json
    from repro.billing import report as billing_report
    from repro.billing.invoice import invoices_from_records
    from repro.billing.meter import UsageRecord
    from repro.core.spec import (
        DeploymentSpec,
        ResourceMode,
        SecurityLevel,
        TrafficScenario,
    )
    from repro.experiments.noisy_neighbor import WORKLOAD, configurations
    from repro.faults.plan import scripted_crash
    from repro.obs.export import write_invoices_jsonl, write_usage_jsonl
    from repro.scenario import (
        Engine,
        NullStore,
        ProcessPoolBackend,
        ResultStore,
        ScenarioSpec,
        SequentialBackend,
    )

    deployments = configurations()
    # L3: per-tenant compartments on dedicated cores with a user-space
    # (DPDK) datapath -- the paper's strongest isolation point.
    deployments.append(DeploymentSpec(
        level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
        resource_mode=ResourceMode.ISOLATED, user_space=True))
    warmup = min(0.02, args.duration / 2.0)
    metering = (("metering", True), ("metering_interval", args.interval))

    def make_specs(faults=None):
        return [
            ScenarioSpec(workload=WORKLOAD, deployment=d,
                         traffic=TrafficScenario.P2V,
                         duration=args.duration, warmup=warmup,
                         seed=args.seed, label=d.label, params=metering,
                         faults=faults)
            for d in deployments
        ]

    clean_specs = make_specs()
    # The chaos composition: crash compartment 0 mid-run and see whose
    # bill the recovery lands on.
    chaos_specs = make_specs(faults=scripted_crash(
        compartment=0, at=args.duration / 3.0))
    # The churn composition: the resident control plane's migration and
    # autoscale re-sync work, billed as recovery line items.
    from repro.controlplane.workload import default_plan, scenario
    churn_spec = scenario(default_plan(duration=30.0), seed=args.seed,
                          label="churn", metering=True)

    backend = (SequentialBackend() if args.jobs in (None, 1)
               else ProcessPoolBackend(max_workers=args.jobs,
                                       chunk=args.chunk))
    store = NullStore() if args.no_cache else ResultStore(args.cache_dir)
    try:
        engine = Engine(backend=backend, store=store)
        clean_results = engine.run(clean_specs)
        chaos_results = engine.run(chaos_specs)
        churn_results = engine.run([churn_spec])
    finally:
        if hasattr(backend, "close"):
            backend.close()

    def split(result):
        records = [UsageRecord.from_dict(u) for u in result.usage
                   if u.get("kind") == "usage"]
        summaries = [u for u in result.usage if u.get("kind") == "summary"]
        return records, (summaries[0] if summaries else {})

    invoices_by_label = {}
    scores = {}
    failures = []
    all_records = []
    all_invoices = []
    for spec, result in zip(clean_specs, clean_results):
        records, summary = split(result)
        invoices = invoices_from_records(records)
        invoices_by_label[result.label] = invoices
        scores[result.label] = summary.get("misattribution_score", 0.0)
        if not summary.get("reconciled", False):
            failures.append((result.label, summary.get("failures", ["no summary"])))
        for rec in records:
            all_records.append({"label": result.label, **rec.to_dict()})
        for inv in invoices:
            all_invoices.append({"label": result.label, **inv.to_dict()})

    print(billing_report.cost_table(invoices_by_label).render())
    print()
    print(billing_report.misattribution_table(scores).render())

    payers_by_label = {}
    for spec, result in zip(chaos_specs, chaos_results):
        records, summary = split(result)
        payers_by_label[result.label] = summary.get("fault_payers", {})
        scores[f"{result.label}+fault"] = summary.get(
            "misattribution_score", 0.0)
        if not summary.get("reconciled", False):
            failures.append((f"{result.label}+fault",
                             summary.get("failures", ["no summary"])))
        for inv in invoices_from_records(records):
            all_invoices.append({"label": f"{result.label}+fault",
                                 **inv.to_dict()})
        for rec in records:
            all_records.append({"label": f"{result.label}+fault",
                                **rec.to_dict()})
    print()
    print(billing_report.fault_payer_table(
        payers_by_label,
        title="Who pays for the compartment-0 crash? (resync seconds "
              "charged per tenant)").render())

    churn_payers = {}
    for result in churn_results:
        records, summary = split(result)
        churn_payers[result.label] = summary.get("fault_payers", {})
        if not summary.get("reconciled", False):
            failures.append((result.label,
                             summary.get("failures", ["no summary"])))
        for rec in records:
            all_records.append({"label": result.label, **rec.to_dict()})
        for inv in invoices_from_records(records):
            all_invoices.append({"label": result.label, **inv.to_dict()})
    print()
    print(billing_report.fault_payer_table(
        churn_payers,
        title="Who pays for control-plane churn? (migration + autoscale "
              "re-sync seconds charged per tenant)").render())

    all_results = clean_results + chaos_results + churn_results
    cached = sum(1 for r in all_results if r.cached)
    reconciled = len(all_results) - len(failures)
    print(f"\n{len(all_results)} metered runs "
          f"({cached} cached): {reconciled} reconciled with accounting, "
          f"{len(failures)} failed")
    for label, errs in failures:
        print(f"  {label}: {'; '.join(str(e) for e in errs[:3])}",
              file=sys.stderr)

    if args.usage_out:
        count = write_usage_jsonl(all_records, args.usage_out)
        print(f"wrote {count} usage records to {args.usage_out}")
    if args.invoices_out:
        count = write_invoices_jsonl(all_invoices, args.invoices_out)
        print(f"wrote {count} invoices to {args.invoices_out}")

    if args.check and failures:
        print(f"billing check FAILED: {len(failures)} runs did not "
              f"reconcile with core/accounting", file=sys.stderr)
        return 2
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident control plane through a churn campaign and
    report lifecycle, SLO and autoscaler tables."""
    import json
    from repro.controlplane.plan import ChurnPlan
    from repro.controlplane.workload import default_plan, scenario
    from repro.measure.reporting import Series, Table
    from repro.scenario import (
        Engine,
        NullStore,
        ProcessPoolBackend,
        ResultStore,
        SequentialBackend,
    )

    if args.plan:
        with open(args.plan) as handle:
            plan = ChurnPlan.from_dict(json.load(handle))
    else:
        plan = default_plan(duration=args.duration,
                            arrival_rate=args.arrival_rate,
                            crashes=args.crashes,
                            mean_lifetime=args.mean_lifetime,
                            seedable_repair=args.repair_after)
    spec = scenario(plan, seed=args.seed, label="churn")
    backend = (SequentialBackend() if args.jobs in (None, 1)
               else ProcessPoolBackend(max_workers=args.jobs,
                                       chunk=args.chunk))
    store = NullStore() if args.no_cache else ResultStore(args.cache_dir)
    try:
        results = Engine(backend=backend, store=store).run([spec])
    finally:
        if hasattr(backend, "close"):
            backend.close()
    result = results[0]
    v = result.values

    lifecycle = Table(
        title=f"Tenant lifecycle over {plan.duration:.0f}s of churn "
              f"({'cached' if result.cached else 'fresh'})",
        fmt=lambda x: f"{x:.0f}")
    series = Series(label="tenants")
    for key in ("arrivals", "placements", "departures", "rejections",
                "evictions", "live_final", "active_final"):
        series.add(key.replace("_final", ""), v.get(key, 0.0))
    lifecycle.add_series(series)
    print(lifecycle.render())

    slo = Table(title="Control-plane SLOs", fmt=lambda x: f"{x:.4g}")
    series = Series(label="slo")
    series.add("admit_s", v.get("admission_latency_mean", 0.0))
    series.add("detect_s", v.get("detect_latency_mean", 0.0))
    series.add("downtime_s", v.get("migration_downtime_mean", 0.0))
    series.add("avail", v.get("availability", 0.0))
    series.add("resumed", v.get("migration_resumed_fraction", 0.0))
    slo.add_series(series)
    print()
    print(slo.render())

    healing = Table(title="Self-healing and autoscaling",
                    fmt=lambda x: f"{x:.0f}")
    series = Series(label="pool")
    for key, col in (("crashes", "crashes"), ("detections", "detected"),
                     ("repairs", "repaired"),
                     ("migrations_started", "migr"),
                     ("migrations_completed", "migr_ok"),
                     ("scale_ups", "up"), ("scale_downs", "down"),
                     ("breaker_trips", "breaker"),
                     ("pool_final", "pool"),
                     ("violations", "viol")):
        series.add(col, v.get(key, 0.0))
    healing.add_series(series)
    print()
    print(healing.render())
    print(f"\nrecovery work billed: "
          f"{v.get('recovery_seconds_total', 0.0) * 1e3:.2f} ms across "
          f"{v.get('migrations_completed', 0.0):.0f} migrations "
          f"and {v.get('scale_ups', 0.0):.0f} boots")

    if args.events_out:
        with open(args.events_out, "w") as handle:
            for event in result.events:
                handle.write(json.dumps(event, sort_keys=True,
                                        separators=(",", ":")) + "\n")
        print(f"wrote {len(result.events)} events to {args.events_out}")

    if args.check:
        problems = []
        if v.get("violations", 0.0) > 0:
            problems.append(f"{v['violations']:.0f} invariant violations")
        if v.get("migration_resumed_fraction", 1.0) < 1.0:
            problems.append("migrated tenants did not all resume")
        if plan.crashes and v.get("migrations_completed", 0.0) <= 0:
            problems.append("crashes injected but nothing migrated")
        if problems:
            print("serve check FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MTS reproduction: build deployments, measure, audit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, extra in [
        ("describe", cmd_describe, False),
        ("plan", cmd_plan, False),
        ("throughput", cmd_throughput, True),
        ("latency", cmd_latency, True),
        ("audit", cmd_audit, False),
    ]:
        p = sub.add_parser(name)
        _add_spec_args(p)
        if extra:
            p.add_argument("--frame-bytes", type=int, default=64)
        if name == "latency":
            p.add_argument("--rate-pps", type=float, default=10_000)
            p.add_argument("--duration", type=float, default=0.2)
            p.add_argument("--seed", type=int, default=0,
                           help="master seed for the DES run (default: 0)")
        p.set_defaults(func=fn)

    p = sub.add_parser("survey")
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser("experiments")
    p.add_argument("--only", help="substring filter on experiment ids")
    p.add_argument("--full", action="store_true",
                   help="longer DES windows (more latency samples)")
    p.add_argument("--extensions", action="store_true",
                   help="include the beyond-the-paper experiments")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for every experiment (default: 0)")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "sweep",
        help="cartesian sweep over deployment axes, cached and parallel")
    p.add_argument("--workload", default="fig5.latency",
                   help="workload name (default: fig5.latency); see "
                        "repro.scenario.WORKLOADS")
    p.add_argument("--levels", nargs="+", default=["baseline", "l1", "l2"],
                   choices=["baseline", "l1", "l2"])
    p.add_argument("--vms", nargs="+", type=int, default=[2],
                   help="Level-2 compartment counts (default: 2)")
    p.add_argument("--tenants", nargs="+", type=int, default=[4])
    p.add_argument("--datapaths", nargs="+", default=["kernel"],
                   choices=["kernel", "dpdk"])
    p.add_argument("--modes", nargs="+", default=["shared"],
                   choices=["shared", "isolated"])
    p.add_argument("--traffic", nargs="+", default=["p2v"],
                   choices=["p2p", "p2v", "v2v"])
    p.add_argument("--duration", type=float, default=0.1,
                   help="DES window per point, seconds (default: 0.1)")
    p.add_argument("--frame-bytes", type=int, default=64)
    p.add_argument("--rate-pps", type=float, default=10_000)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: one per *available* "
                        "core, respecting cgroup/affinity limits; "
                        "1 = in-process sequential)")
    p.add_argument("--chunk", type=int, default=None,
                   help="scenarios per worker batch (default: adaptive, "
                        "~4 batches per worker)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result store")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result store directory (default: .repro-cache)")
    p.add_argument("--out", metavar="SWEEP.jsonl",
                   help="write one JSON line per point")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; per-point seeds fork off it")
    p.add_argument("--faults", metavar="PLAN.json",
                   help="fault campaign applied to every point")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-scenario wall-clock budget in pool workers")
    p.add_argument("--servers", nargs="+", type=int, default=[],
                   help="fabric fleet sizes to grid over "
                        "(fabric.* workloads)")
    p.add_argument("--placements", nargs="+", default=[],
                   choices=["striping", "greedy", "local"],
                   help="placement policies to grid over "
                        "(fabric.* workloads)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "fabric",
        help="place a tenant mix on a multi-rack fabric and run the "
             "hybrid DES+fluid simulation over the flows under study")
    p.add_argument("--servers", type=int, default=16)
    p.add_argument("--servers-per-rack", type=int, default=16)
    p.add_argument("--tenants", type=int, default=64,
                   help="total tenants across the fabric (default: 64)")
    p.add_argument("--level", choices=["l1", "l2"], default="l2")
    p.add_argument("--vms", type=int, default=None,
                   help="vswitch compartments per server (default: 2)")
    p.add_argument("--placement", default="greedy",
                   choices=["striping", "greedy", "local"])
    p.add_argument("--study-flows", type=int, default=2,
                   help="flows simulated per-packet (default: 2)")
    p.add_argument("--study-mode", choices=["pairs", "probes"],
                   default="probes",
                   help="study the heaviest tenant pairs, or cross-group "
                        "probe flows that exercise the fabric "
                        "(default: probes)")
    p.add_argument("--duration", type=float, default=0.2,
                   help="DES window, simulated seconds (default: 0.2)")
    p.add_argument("--frame-bytes", type=int, default=512)
    p.add_argument("--demand-pps", type=float, default=20_000,
                   help="base background demand per tenant group")
    p.add_argument("--zone-size", type=int, default=8,
                   help="tenants per security zone in the synthetic mix "
                        "(default: 8, the per-compartment cap)")
    p.add_argument("--link-gbps", type=float, default=10.0,
                   help="server access-link bandwidth (default: 10)")
    p.add_argument("--tor-uplink-gbps", type=float, default=40.0)
    p.add_argument("--tenants-per-compartment", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--validate", action="store_true",
                   help="also run the pure-DES oracle and report the "
                        "hybrid's disagreement and speedup")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when the fluid/DES disagreement "
                        "exceeds --tolerance (CI smoke)")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="allowed relative disagreement (default: 0.05)")
    p.set_defaults(func=cmd_fabric)

    p = sub.add_parser(
        "chaos",
        help="fault campaign across security levels: blast radius, MTTR")
    p.add_argument("--duration", type=float, default=0.15,
                   help="DES window per campaign, seconds (default: 0.15)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--crash-index", type=int, default=0,
                   help="compartment to crash (default plan; default: 0)")
    p.add_argument("--heartbeat", type=float, default=0.005,
                   help="watchdog probe period, seconds (default: 0.005)")
    p.add_argument("--warm-standby", action="store_true",
                   help="fail Level-2 compartments over to pre-synced "
                        "standbys instead of cold restarts")
    p.add_argument("--plan", metavar="PLAN.json",
                   help="full fault plan (overrides the default crash)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: in-process)")
    p.add_argument("--chunk", type=int, default=None,
                   help="campaigns per worker batch (default: adaptive)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result store")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result store directory (default: .repro-cache)")
    p.add_argument("--events-out", metavar="EVENTS.jsonl",
                   help="write the inject/detect/recover event log")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless every campaign repaired "
                        "and no invariant was violated (CI smoke)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "billing",
        help="per-tenant metering, invoices, misattribution and "
             "fault-cost attribution across Baseline/L1/L2/L3")
    p.add_argument("--duration", type=float, default=0.06,
                   help="DES window per deployment, seconds "
                        "(default: 0.06; the 2 Mpps noisy-neighbor "
                        "flood is expensive to simulate)")
    p.add_argument("--interval", type=float, default=0.01,
                   help="accounting window length in simulated seconds "
                        "(default: 0.01)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: in-process)")
    p.add_argument("--chunk", type=int, default=None,
                   help="scenarios per worker batch (default: adaptive)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result store")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result store directory (default: .repro-cache)")
    p.add_argument("--usage-out", metavar="USAGE.jsonl",
                   help="write every windowed usage record")
    p.add_argument("--invoices-out", metavar="INVOICES.jsonl",
                   help="write every per-tenant invoice")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero unless every metered run "
                        "reconciles with core/accounting (CI smoke)")
    p.set_defaults(func=cmd_billing)

    p = sub.add_parser(
        "serve",
        help="resident control plane: tenant churn with admission, "
             "autoscaling and self-healing live migration")
    p.add_argument("--duration", type=float, default=60.0,
                   help="churn horizon, simulated seconds (default: 60)")
    p.add_argument("--arrival-rate", type=float, default=2.0,
                   help="Poisson tenant arrivals per second (default: 2)")
    p.add_argument("--mean-lifetime", type=float, default=30.0,
                   help="mean tenant lifetime, seconds (default: 30)")
    p.add_argument("--crashes", type=int, default=3,
                   help="scripted compartment crashes spread across the "
                        "run (default: 3)")
    p.add_argument("--repair-after", type=float, default=10.0,
                   help="scripted repair delay per crash (default: 10)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plan", metavar="CHURN.json",
                   help="full churn plan (overrides the flags above)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: in-process)")
    p.add_argument("--chunk", type=int, default=None)
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result store")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result store directory (default: .repro-cache)")
    p.add_argument("--events-out", metavar="EVENTS.jsonl",
                   help="write the lifecycle event log")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero on any lifecycle-invariant "
                        "violation or unrecovered migration (CI smoke)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "obs", help="run one traced deployment and dump its telemetry")
    _add_spec_args(p)
    p.add_argument("--frame-bytes", type=int, default=64)
    p.add_argument("--rate-pps", type=float, default=10_000)
    p.add_argument("--duration", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for the DES run (default: 0)")
    p.add_argument("--journeys", type=int, default=1,
                   help="packet journeys to print (default: 1)")
    p.add_argument("--span-capacity", type=int, default=1_000_000)
    p.add_argument("--trace-out", metavar="SPANS.jsonl",
                   help="write all spans as JSON-lines")
    p.add_argument("--metrics-out", metavar="METRICS.prom",
                   help="write a Prometheus text snapshot")
    p.set_defaults(func=cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
