"""Reproduction of "MTS: Bringing Multi-Tenancy to Virtual Networking".

MTS (Thimmaraju, Hermak, Retvari, Schmid; USENIX ATC 2019) is a secure
virtual-switch architecture for multi-tenant clouds: virtual switches are
compartmentalized into dedicated VMs, all tenant traffic is completely
mediated through the embedded L2 switch of an SR-IOV NIC, and the vswitch
datapath can optionally run in user space (DPDK) for an extra security
boundary.

This package provides:

- ``repro.sim`` -- a discrete-event simulation kernel.
- ``repro.net`` -- addresses, frames, ARP, links and taps.
- ``repro.sriov`` -- a functional SR-IOV NIC model (PF/VFs, embedded VEB
  L2 switch with VLANs and MAC learning, anti-spoof and wildcard filters,
  PCIe model).
- ``repro.vswitch`` -- OpenFlow-style flow tables, an OVS-like bridge,
  kernel and DPDK datapath models, a Linux bridge and a DPDK l2fwd app.
- ``repro.host`` -- servers, CPU cores, memory/hugepages, VMs and a
  libvirt-like hypervisor.
- ``repro.core`` -- the MTS contribution: deployment specs, the planner,
  Baseline/Level-1/Level-2/Level-3 deployments, the central controller,
  VF-allocation formulas and resource strategies.
- ``repro.security`` -- secure-design-principle analysis, TCB accounting,
  compromise propagation, and the Table 1 vswitch survey.
- ``repro.traffic`` / ``repro.workloads`` -- packet generators, the
  p2p/p2v/v2v scenarios, and iperf/Apache/Memcached workload models.
- ``repro.perfmodel`` -- the calibrated capacity and latency models.
- ``repro.experiments`` -- one module per paper figure/table.

Quickstart::

    from repro.core import DeploymentSpec, SecurityLevel, ResourceMode, build_deployment
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=2, resource_mode=ResourceMode.SHARED)
    deployment = build_deployment(spec)
    print(deployment.describe())
"""

from repro._version import __version__

__all__ = ["__version__"]
