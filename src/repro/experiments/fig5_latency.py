"""Fig. 5(b,e,h): one-way forwarding latency distributions.

Methodology mirrors the paper: a constant aggregate 10 kpps stream (4
flows) is replayed while both links are tapped; only samples from the
post-warmup window count.  The paper sends for 30 s and evaluates the
10-20 s slice; the discrete-event simulation reproduces the same
pipeline at a shorter (configurable) timescale -- the distributions are
stationary, so the window length only controls sample count.

The paper reports 64 B distributions and studied 512/1500/2048 B as
well; ``frame_bytes`` selects the size.  ``scenarios(mode)`` declares
one figure row for the scenario engine; ``run(mode)`` executes it and
tabulates the medians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.measure.stats import SummaryStats, summarize
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import (
    ScenarioResult,
    ScenarioSpec,
    calibration_ref,
)
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, USEC

SCENARIOS = (TrafficScenario.P2P, TrafficScenario.P2V, TrafficScenario.V2V)

#: The paper's latency-test load.
DEFAULT_AGGREGATE_PPS = 10 * KPPS

WORKLOAD = "fig5.latency"


@dataclass
class LatencyMeasurement:
    config_label: str
    scenario: TrafficScenario
    stats: SummaryStats


def measure_latency(
    config: ConfigPoint,
    scenario: TrafficScenario,
    frame_bytes: int = 64,
    aggregate_pps: float = DEFAULT_AGGREGATE_PPS,
    duration: float = 0.3,
    warmup: float = 0.05,
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> LatencyMeasurement:
    """Packet-level DES measurement of one configuration point."""
    warmup = min(warmup, duration / 3.0)
    spec = config.spec()
    deployment = build_deployment(spec, scenario, seed=seed,
                                  calibration=calibration)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(
        rate_per_flow_pps=aggregate_pps / spec.num_tenants,
        frame_bytes=frame_bytes,
    )
    result = harness.run(duration=duration, warmup=warmup)
    if not result.latencies:
        raise RuntimeError(
            f"no latency samples for {config.label}/{scenario.value}"
        )
    return LatencyMeasurement(config.label, scenario,
                              summarize(result.latencies))


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: the latency distribution of one spec."""
    warmup = min(spec.warmup, spec.duration / 3.0)
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    harness = TestbedHarness(deployment)
    aggregate_pps = float(spec.param("aggregate_pps",
                                     DEFAULT_AGGREGATE_PPS))
    harness.configure_tenant_flows(
        rate_per_flow_pps=aggregate_pps / spec.deployment.num_tenants,
        frame_bytes=int(spec.param("frame_bytes", 64)),
    )
    result = harness.run(duration=spec.duration, warmup=warmup)
    if not result.latencies:
        raise RuntimeError(
            f"no latency samples for {spec.display_label}")
    stats = summarize(result.latencies)
    return {
        "median_us": stats.median / USEC,
        "p25_us": stats.p25 / USEC,
        "p75_us": stats.p75 / USEC,
        "p99_us": stats.p99 / USEC,
        "mean_us": stats.mean / USEC,
        "samples": float(stats.count),
        "loss_fraction": result.loss_fraction,
    }


def scenarios(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
              duration: float = 0.3, seed: int = 0,
              calibration: Calibration = DEFAULT_CALIBRATION
              ) -> List[ScenarioSpec]:
    """One figure row as engine-consumable specs."""
    specs: List[ScenarioSpec] = []
    for config in configs_for_mode(mode):
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            specs.append(ScenarioSpec(
                workload=WORKLOAD,
                deployment=config.spec(),
                traffic=scenario,
                duration=duration,
                warmup=0.05,
                seed=seed,
                eval_mode=mode,
                label=config.label,
                params={"frame_bytes": frame_bytes,
                        "aggregate_pps": DEFAULT_AGGREGATE_PPS},
                calibration_ref=calibration_ref(calibration),
            ))
    return specs


def tabulate(results: Sequence[ScenarioResult],
             mode: str = EvalMode.SHARED,
             frame_bytes: int = 64) -> Table:
    figure = {EvalMode.SHARED: "Fig. 5(b)", EvalMode.ISOLATED: "Fig. 5(e)",
              EvalMode.DPDK: "Fig. 5(h)"}[mode]
    table = Table(
        title=f"{figure} median one-way latency, {mode} mode, "
              f"{frame_bytes} B @ 10 kpps",
        unit="us",
        fmt=lambda v: f"{v:.1f}",
    )
    by_label: Dict[str, Series] = {}
    for result in results:
        series = by_label.get(result.label)
        if series is None:
            series = by_label[result.label] = Series(label=result.label)
            table.add_series(series)
        series.add(result.traffic, result.values["median_us"])
    return table


def run(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
        duration: float = 0.3, seed: int = 0,
        calibration: Calibration = DEFAULT_CALIBRATION) -> Table:
    """One row of Fig. 5's latency column (medians, in microseconds)."""
    from repro.experiments.runner import default_engine
    specs = scenarios(mode, frame_bytes, duration, seed=seed,
                      calibration=calibration)
    results = default_engine(calibration).run(specs)
    return tabulate(results, mode, frame_bytes)


def run_all(frame_bytes: int = 64, duration: float = 0.3) -> Dict[str, Table]:
    return {mode: run(mode, frame_bytes, duration) for mode in EvalMode.ALL}
