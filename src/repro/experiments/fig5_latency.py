"""Fig. 5(b,e,h): one-way forwarding latency distributions.

Methodology mirrors the paper: a constant aggregate 10 kpps stream (4
flows) is replayed while both links are tapped; only samples from the
post-warmup window count.  The paper sends for 30 s and evaluates the
10-20 s slice; the discrete-event simulation reproduces the same
pipeline at a shorter (configurable) timescale -- the distributions are
stationary, so the window length only controls sample count.

The paper reports 64 B distributions and studied 512/1500/2048 B as
well; ``frame_bytes`` selects the size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.measure.stats import SummaryStats, summarize
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, USEC

SCENARIOS = (TrafficScenario.P2P, TrafficScenario.P2V, TrafficScenario.V2V)

#: The paper's latency-test load.
DEFAULT_AGGREGATE_PPS = 10 * KPPS


@dataclass
class LatencyMeasurement:
    config_label: str
    scenario: TrafficScenario
    stats: SummaryStats


def measure_latency(
    config: ConfigPoint,
    scenario: TrafficScenario,
    frame_bytes: int = 64,
    aggregate_pps: float = DEFAULT_AGGREGATE_PPS,
    duration: float = 0.3,
    warmup: float = 0.05,
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> LatencyMeasurement:
    """Packet-level DES measurement of one configuration point."""
    warmup = min(warmup, duration / 3.0)
    spec = config.spec()
    deployment = build_deployment(spec, scenario, seed=seed,
                                  calibration=calibration)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(
        rate_per_flow_pps=aggregate_pps / spec.num_tenants,
        frame_bytes=frame_bytes,
    )
    result = harness.run(duration=duration, warmup=warmup)
    if not result.latencies:
        raise RuntimeError(
            f"no latency samples for {config.label}/{scenario.value}"
        )
    return LatencyMeasurement(config.label, scenario,
                              summarize(result.latencies))


def run(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
        duration: float = 0.3,
        calibration: Calibration = DEFAULT_CALIBRATION) -> Table:
    """One row of Fig. 5's latency column (medians, in microseconds)."""
    figure = {EvalMode.SHARED: "Fig. 5(b)", EvalMode.ISOLATED: "Fig. 5(e)",
              EvalMode.DPDK: "Fig. 5(h)"}[mode]
    table = Table(
        title=f"{figure} median one-way latency, {mode} mode, "
              f"{frame_bytes} B @ 10 kpps",
        unit="us",
        fmt=lambda v: f"{v:.1f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            measurement = measure_latency(config, scenario, frame_bytes,
                                          duration=duration,
                                          calibration=calibration)
            series.add(scenario.value, measurement.stats.median / USEC)
        table.add_series(series)
    return table


def run_all(frame_bytes: int = 64, duration: float = 0.3) -> Dict[str, Table]:
    return {mode: run(mode, frame_bytes, duration) for mode in EvalMode.ALL}
