"""Fig. 6(a,f,k): aggregate iperf TCP throughput.

Single-stream iperf clients at the load generator against servers in
the tenant VMs, 100 s runs, 5 repetitions, mean with 95% confidence.
The workload topology uses one NIC port for both directions (the
paper's Fig. 6 resource note).  Repetition noise draws from a named
RNG stream per (config, scenario) so the numbers are stable across
runs, processes and execution order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import (
    ConfigPoint,
    EvalMode,
    configs_for_mode,
    repeat_with_noise,
)
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.workloads.iperf import IperfModel

SCENARIOS = (TrafficScenario.P2V, TrafficScenario.V2V)

WORKLOAD = "fig6.iperf"

#: The paper's repetition count.
REPETITIONS = 5


def iperf_gbps(config: ConfigPoint, scenario: TrafficScenario) -> float:
    deployment = build_deployment(config.spec(nic_ports=1), scenario)
    return IperfModel(deployment, scenario).run().aggregate_gbps


def iperf_with_ci(config: ConfigPoint, scenario: TrafficScenario,
                  repetitions: int = REPETITIONS,
                  seed: int = 0) -> Tuple[float, float]:
    return repeat_with_noise(
        lambda: iperf_gbps(config, scenario),
        repetitions=repetitions,
        seed=seed,
        stream=f"iperf:{config.label}:{scenario.value}")


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: iperf mean/CI of one spec."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    base = IperfModel(deployment, spec.traffic).run().aggregate_gbps
    mean, ci = repeat_with_noise(
        lambda: base,
        repetitions=int(spec.param("repetitions", REPETITIONS)),
        seed=spec.seed,
        stream=f"iperf:{spec.deployment.label}:{spec.traffic.value}")
    return {"gbps_mean": mean, "gbps_ci": ci}


def scenarios(mode: str = EvalMode.SHARED,
              seed: int = 0) -> List[ScenarioSpec]:
    """One figure row as engine-consumable specs."""
    specs: List[ScenarioSpec] = []
    for config in configs_for_mode(mode):
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            specs.append(ScenarioSpec(
                workload=WORKLOAD,
                deployment=config.spec(nic_ports=1),
                traffic=scenario,
                seed=seed,
                eval_mode=mode,
                label=config.label,
                params={"repetitions": REPETITIONS},
            ))
    return specs


def tabulate(results: Sequence[ScenarioResult],
             mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(a)", EvalMode.ISOLATED: "Fig. 6(f)",
              EvalMode.DPDK: "Fig. 6(k)"}[mode]
    table = Table(
        title=f"{figure} iperf aggregate TCP throughput, {mode} mode",
        unit="Gbps",
        fmt=lambda v: f"{v:.2f}",
    )
    by_label: Dict[str, Series] = {}
    for result in results:
        series = by_label.get(result.label)
        if series is None:
            series = by_label[result.label] = Series(label=result.label)
            table.add_series(series)
        series.add(result.traffic, result.values["gbps_mean"])
    return table


def run(mode: str = EvalMode.SHARED, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    results = default_engine().run(scenarios(mode, seed=seed))
    return tabulate(results, mode)


def run_all() -> Dict[str, Table]:
    return {mode: run(mode) for mode in EvalMode.ALL}
