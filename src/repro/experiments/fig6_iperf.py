"""Fig. 6(a,f,k): aggregate iperf TCP throughput.

Single-stream iperf clients at the load generator against servers in
the tenant VMs, 100 s runs, 5 repetitions, mean with 95% confidence.
The workload topology uses one NIC port for both directions (the
paper's Fig. 6 resource note).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode, repeat_with_noise
from repro.measure.reporting import Series, Table
from repro.workloads.iperf import IperfModel

SCENARIOS = (TrafficScenario.P2V, TrafficScenario.V2V)


def iperf_gbps(config: ConfigPoint, scenario: TrafficScenario) -> float:
    deployment = build_deployment(config.spec(nic_ports=1), scenario)
    return IperfModel(deployment, scenario).run().aggregate_gbps


def iperf_with_ci(config: ConfigPoint, scenario: TrafficScenario,
                  repetitions: int = 5) -> Tuple[float, float]:
    return repeat_with_noise(lambda: iperf_gbps(config, scenario),
                             repetitions=repetitions,
                             seed=hash((config.label, scenario.value)) & 0xFFFF)


def run(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(a)", EvalMode.ISOLATED: "Fig. 6(f)",
              EvalMode.DPDK: "Fig. 6(k)"}[mode]
    table = Table(
        title=f"{figure} iperf aggregate TCP throughput, {mode} mode",
        unit="Gbps",
        fmt=lambda v: f"{v:.2f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            mean, _ci = iperf_with_ci(config, scenario)
            series.add(scenario.value, mean)
        table.add_series(series)
    return table


def run_all() -> Dict[str, Table]:
    return {mode: run(mode) for mode in EvalMode.ALL}
