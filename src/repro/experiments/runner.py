"""Run every experiment and render all tables (EXPERIMENTS.md source).

``python -m repro.experiments.runner`` regenerates every figure/table
row of the paper's evaluation and prints them in order.  ``quick=True``
shortens the DES latency windows (the distributions are stationary, so
only sample counts shrink).

Every experiment module follows the scenario-engine split:
``scenarios(...)`` declares frozen :class:`ScenarioSpec` lists,
``tabulate(results, ...)`` is a pure function from engine results to a
:class:`Table`, and ``run(...)`` composes the two through
:func:`default_engine`.  This module holds the plan (what to run, in
what order, at which durations) and the engine the ``run()`` wrappers
share.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.experiments import fig5_latency, fig5_resources, fig5_throughput
from repro.experiments import fig6_apache, fig6_iperf, fig6_memcached
from repro.experiments import table1_survey, vf_table
from repro.experiments import (
    deployment_cost,
    fault_isolation,
    latency_breakdown,
    noisy_neighbor,
    policy_injection,
)
from repro.experiments.common import EvalMode
from repro.measure.reporting import Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.engine import Engine, SequentialBackend


def default_engine(calibration: Calibration = DEFAULT_CALIBRATION
                   ) -> Engine:
    """The engine the ``run()`` wrappers share: sequential, no disk
    cache (within-batch dedup still applies).  ``repro sweep`` builds
    its own engine with a process pool and a content-addressed store.
    """
    return Engine(backend=SequentialBackend(), store=None,
                  calibration=calibration)


#: An experiment id paired with a zero-arg callable producing its table.
ExperimentPlan = List[Tuple[str, Callable[[], Table]]]


def experiment_plan(quick: bool = True, seed: int = 0) -> ExperimentPlan:
    """The paper's evaluation as (id, thunk) pairs, in run order.

    Callers that want per-experiment bookkeeping (the CLI's cache-efficacy
    lines diff the obs registry around each thunk) iterate this instead
    of :func:`run_everything`, which is now a thin fold over it.
    """
    latency_duration = 0.15 if quick else 0.5
    plan: ExperimentPlan = [
        ("table1", table1_survey.run),
        ("vf-budgets", vf_table.run),
    ]
    for mode in EvalMode.ALL:
        plan.extend([
            (f"fig5-throughput-{mode}",
             lambda m=mode: fig5_throughput.run(m, seed=seed)),
            (f"fig5-latency-{mode}",
             lambda m=mode: fig5_latency.run(m, duration=latency_duration,
                                             seed=seed)),
            (f"fig5-resources-{mode}",
             lambda m=mode: fig5_resources.run(m, seed=seed)),
            (f"fig6-iperf-{mode}",
             lambda m=mode: fig6_iperf.run(m, seed=seed)),
            (f"fig6-apache-tput-{mode}",
             lambda m=mode: fig6_apache.run_throughput(m, seed=seed)),
            (f"fig6-apache-rt-{mode}",
             lambda m=mode: fig6_apache.run_response_time(m, seed=seed)),
            (f"fig6-memcached-tput-{mode}",
             lambda m=mode: fig6_memcached.run_throughput(m, seed=seed)),
            (f"fig6-memcached-rt-{mode}",
             lambda m=mode: fig6_memcached.run_response_time(m, seed=seed)),
        ])
    return plan


def extension_plan(quick: bool = True, seed: int = 0) -> ExperimentPlan:
    """The beyond-the-paper experiments as (id, thunk) pairs."""
    window = 0.06 if quick else 0.15
    return [
        ("ext-noisy-neighbor",
         lambda: noisy_neighbor.run(duration=window, seed=seed)),
        ("ext-policy-injection",
         lambda: policy_injection.run(duration=window, seed=seed)),
        ("ext-latency-breakdown",
         lambda: latency_breakdown.run(duration=window, seed=seed)),
        ("ext-fault-isolation",
         lambda: fault_isolation.run(phase=window / 1.5, seed=seed)),
        ("ext-deployment-cost", lambda: deployment_cost.run(seed=seed)),
    ]


def run_everything(quick: bool = True, seed: int = 0) -> Dict[str, Table]:
    """All tables of the paper's evaluation, keyed by experiment id."""
    return {key: thunk()
            for key, thunk in experiment_plan(quick=quick, seed=seed)}


def run_extensions(quick: bool = True, seed: int = 0) -> Dict[str, Table]:
    """The beyond-the-paper experiments (DESIGN.md section 7)."""
    return {key: thunk()
            for key, thunk in extension_plan(quick=quick, seed=seed)}


def render_everything(quick: bool = True,
                      include_extensions: bool = False,
                      seed: int = 0) -> str:
    tables = run_everything(quick=quick, seed=seed)
    if include_extensions:
        tables.update(run_extensions(quick=quick, seed=seed))
    chunks: List[str] = []
    for key in sorted(tables):
        chunks.append(tables[key].render())
    chunks.append(table1_survey.render_full())
    return "\n\n".join(chunks)


def main() -> None:
    import sys
    print(render_everything(
        quick=True,
        include_extensions="--extensions" in sys.argv))


if __name__ == "__main__":
    main()
