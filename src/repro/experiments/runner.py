"""Run every experiment and render all tables (EXPERIMENTS.md source).

``python -m repro.experiments.runner`` regenerates every figure/table
row of the paper's evaluation and prints them in order.  ``quick=True``
shortens the DES latency windows (the distributions are stationary, so
only sample counts shrink).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import fig5_latency, fig5_resources, fig5_throughput
from repro.experiments import fig6_apache, fig6_iperf, fig6_memcached
from repro.experiments import table1_survey, vf_table
from repro.experiments import (
    deployment_cost,
    fault_isolation,
    latency_breakdown,
    noisy_neighbor,
    policy_injection,
)
from repro.experiments.common import EvalMode
from repro.measure.reporting import Table


def run_everything(quick: bool = True) -> Dict[str, Table]:
    """All tables of the paper's evaluation, keyed by experiment id."""
    latency_duration = 0.15 if quick else 0.5
    tables: Dict[str, Table] = {}
    tables["table1"] = table1_survey.run()
    tables["vf-budgets"] = vf_table.run()
    for mode in EvalMode.ALL:
        tables[f"fig5-throughput-{mode}"] = fig5_throughput.run(mode)
        tables[f"fig5-latency-{mode}"] = fig5_latency.run(
            mode, duration=latency_duration)
        tables[f"fig5-resources-{mode}"] = fig5_resources.run(mode)
        tables[f"fig6-iperf-{mode}"] = fig6_iperf.run(mode)
        tables[f"fig6-apache-tput-{mode}"] = fig6_apache.run_throughput(mode)
        tables[f"fig6-apache-rt-{mode}"] = fig6_apache.run_response_time(mode)
        tables[f"fig6-memcached-tput-{mode}"] = fig6_memcached.run_throughput(mode)
        tables[f"fig6-memcached-rt-{mode}"] = fig6_memcached.run_response_time(mode)
    return tables


def run_extensions(quick: bool = True) -> Dict[str, Table]:
    """The beyond-the-paper experiments (DESIGN.md section 7)."""
    window = 0.06 if quick else 0.15
    return {
        "ext-noisy-neighbor": noisy_neighbor.run(duration=window),
        "ext-policy-injection": policy_injection.run(duration=window),
        "ext-latency-breakdown": latency_breakdown.run(duration=window),
        "ext-fault-isolation": fault_isolation.run(phase=window / 1.5),
        "ext-deployment-cost": deployment_cost.run(),
    }


def render_everything(quick: bool = True,
                      include_extensions: bool = False) -> str:
    tables = run_everything(quick=quick)
    if include_extensions:
        tables.update(run_extensions(quick=quick))
    chunks: List[str] = []
    for key in sorted(tables):
        chunks.append(tables[key].render())
    chunks.append(table1_survey.render_full())
    return "\n\n".join(chunks)


def main() -> None:
    import sys
    print(render_everything(
        quick=True,
        include_extensions="--extensions" in sys.argv))


if __name__ == "__main__":
    main()
