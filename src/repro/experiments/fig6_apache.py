"""Fig. 6(b,g,l) and (d,i,n): Apache throughput and response time.

ApacheBench against each tenant's webserver: a static 11.3 KB page,
up to 1000 concurrent connections per client, 100 s, 5 repetitions
with 95% confidence.  In v2v only two client-server pairs run (the
other tenants forward), as in the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode, repeat_with_noise
from repro.measure.reporting import Series, Table
from repro.units import MSEC
from repro.workloads.httpd import ApacheModel

SCENARIOS = (TrafficScenario.P2V, TrafficScenario.V2V)


def apache_metrics(config: ConfigPoint,
                   scenario: TrafficScenario) -> Tuple[float, float]:
    """(aggregate requests/s, mean response time seconds)."""
    deployment = build_deployment(config.spec(nic_ports=1), scenario)
    report = ApacheModel(deployment, scenario).run()
    return report.aggregate_rps, report.mean_response_time


def run_throughput(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(b)", EvalMode.ISOLATED: "Fig. 6(g)",
              EvalMode.DPDK: "Fig. 6(l)"}[mode]
    table = Table(
        title=f"{figure} Apache throughput, {mode} mode",
        unit="req/s",
        fmt=lambda v: f"{v:.0f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            mean, _ci = repeat_with_noise(
                lambda: apache_metrics(config, scenario)[0],
                seed=hash(("ab-rps", config.label, scenario.value)) & 0xFFFF,
            )
            series.add(scenario.value, mean)
        table.add_series(series)
    return table


def run_response_time(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(d)", EvalMode.ISOLATED: "Fig. 6(i)",
              EvalMode.DPDK: "Fig. 6(n)"}[mode]
    table = Table(
        title=f"{figure} Apache response time, {mode} mode",
        unit="ms",
        fmt=lambda v: f"{v:.1f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            mean, _ci = repeat_with_noise(
                lambda: apache_metrics(config, scenario)[1],
                seed=hash(("ab-rt", config.label, scenario.value)) & 0xFFFF,
            )
            series.add(scenario.value, mean / MSEC)
        table.add_series(series)
    return table


def run_all() -> Dict[str, Table]:
    tables = {}
    for mode in EvalMode.ALL:
        tables[f"{mode}-throughput"] = run_throughput(mode)
        tables[f"{mode}-response-time"] = run_response_time(mode)
    return tables
