"""Fig. 6(b,g,l) and (d,i,n): Apache throughput and response time.

ApacheBench against each tenant's webserver: a static 11.3 KB page,
up to 1000 concurrent connections per client, 100 s, 5 repetitions
with 95% confidence.  In v2v only two client-server pairs run (the
other tenants forward), as in the paper.

One scenario measures *both* metrics (each with its own named noise
stream), so the throughput and response-time rows of the figure share
one cached point per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import (
    ConfigPoint,
    EvalMode,
    configs_for_mode,
    repeat_with_noise,
)
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.units import MSEC
from repro.workloads.httpd import ApacheModel

SCENARIOS = (TrafficScenario.P2V, TrafficScenario.V2V)

WORKLOAD = "fig6.apache"

REPETITIONS = 5


def apache_metrics(config: ConfigPoint,
                   scenario: TrafficScenario) -> Tuple[float, float]:
    """(aggregate requests/s, mean response time seconds)."""
    deployment = build_deployment(config.spec(nic_ports=1), scenario)
    report = ApacheModel(deployment, scenario).run()
    return report.aggregate_rps, report.mean_response_time


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: both Apache metrics of one spec."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    report = ApacheModel(deployment, spec.traffic).run()
    repetitions = int(spec.param("repetitions", REPETITIONS))
    point = f"{spec.deployment.label}:{spec.traffic.value}"
    rps_mean, rps_ci = repeat_with_noise(
        lambda: report.aggregate_rps, repetitions=repetitions,
        seed=spec.seed, stream=f"apache.rps:{point}")
    rt_mean, rt_ci = repeat_with_noise(
        lambda: report.mean_response_time, repetitions=repetitions,
        seed=spec.seed, stream=f"apache.rt:{point}")
    return {"rps_mean": rps_mean, "rps_ci": rps_ci,
            "rt_mean_s": rt_mean, "rt_ci_s": rt_ci}


def scenarios(mode: str = EvalMode.SHARED,
              seed: int = 0) -> List[ScenarioSpec]:
    """One figure row as engine-consumable specs (shared by the
    throughput and response-time tables)."""
    specs: List[ScenarioSpec] = []
    for config in configs_for_mode(mode):
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            specs.append(ScenarioSpec(
                workload=WORKLOAD,
                deployment=config.spec(nic_ports=1),
                traffic=scenario,
                seed=seed,
                eval_mode=mode,
                label=config.label,
                params={"repetitions": REPETITIONS},
            ))
    return specs


def _tabulate(results: Sequence[ScenarioResult], title: str, unit: str,
              fmt, value_of) -> Table:
    table = Table(title=title, unit=unit, fmt=fmt)
    by_label: Dict[str, Series] = {}
    for result in results:
        series = by_label.get(result.label)
        if series is None:
            series = by_label[result.label] = Series(label=result.label)
            table.add_series(series)
        series.add(result.traffic, value_of(result))
    return table


def tabulate_throughput(results: Sequence[ScenarioResult],
                        mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(b)", EvalMode.ISOLATED: "Fig. 6(g)",
              EvalMode.DPDK: "Fig. 6(l)"}[mode]
    return _tabulate(results, f"{figure} Apache throughput, {mode} mode",
                     "req/s", lambda v: f"{v:.0f}",
                     lambda r: r.values["rps_mean"])


def tabulate_response_time(results: Sequence[ScenarioResult],
                           mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(d)", EvalMode.ISOLATED: "Fig. 6(i)",
              EvalMode.DPDK: "Fig. 6(n)"}[mode]
    return _tabulate(results, f"{figure} Apache response time, {mode} mode",
                     "ms", lambda v: f"{v:.1f}",
                     lambda r: r.values["rt_mean_s"] / MSEC)


def run_throughput(mode: str = EvalMode.SHARED, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate_throughput(
        default_engine().run(scenarios(mode, seed=seed)), mode)


def run_response_time(mode: str = EvalMode.SHARED, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate_response_time(
        default_engine().run(scenarios(mode, seed=seed)), mode)


def run_all() -> Dict[str, Table]:
    tables = {}
    for mode in EvalMode.ALL:
        tables[f"{mode}-throughput"] = run_throughput(mode)
        tables[f"{mode}-response-time"] = run_response_time(mode)
    return tables
