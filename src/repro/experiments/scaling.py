"""Scaling sweeps beyond the paper's fixed 4-tenant setups.

Two questions an adopter asks next:

- **tenant scaling**: with the compartment count fixed, how do
  aggregate and per-tenant rates move as tenants grow?  (The paper
  fixes 4 tenants everywhere.)
- **frame-size throughput**: the paper sweeps frame sizes only for
  latency; this sweeps the throughput column, showing where the
  per-packet CPU bound gives way to the wire.
"""

from __future__ import annotations

from typing import List

from repro.core.deployment import build_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.measure.reporting import Series, Table
from repro.perfmodel.paths import throughput
from repro.units import GBPS, MPPS, pps_to_bps

FRAME_SIZES = (64, 512, 1514, 2048)


def tenant_scaling(tenant_counts: List[int] = [2, 4, 6, 8],
                   scenario: TrafficScenario = TrafficScenario.P2V) -> Table:
    """Aggregate and per-tenant p2v throughput vs tenant count, L2(2)
    shared vs Baseline."""
    table = Table(
        title=f"Tenant scaling ({scenario.value}, 64 B, shared mode)",
        unit="Mpps",
        fmt=lambda v: f"{v:.3f}",
    )
    for label, level, vms in (("Baseline agg", SecurityLevel.BASELINE, 1),
                              ("L2(2) agg", SecurityLevel.LEVEL_2, 2),
                              ("L2(2) per-tenant", SecurityLevel.LEVEL_2, 2)):
        series = Series(label=label)
        for tenants in tenant_counts:
            spec = DeploymentSpec(level=level, num_tenants=tenants,
                                  num_vswitch_vms=vms,
                                  resource_mode=ResourceMode.SHARED)
            # Beyond-paper tenant counts need a bigger host (the DUT's
            # 16 cores fit at most 6 two-core tenants + networking).
            from repro.host.server import Server
            from repro.sim.kernel import Simulator
            sim = Simulator()
            server = Server(sim, num_cores=2 * tenants + 8)
            d = build_deployment(spec, scenario, sim=sim, server=server)
            result = throughput(d, scenario)
            value = result.aggregate_pps / MPPS
            if label.endswith("per-tenant"):
                value = min(result.rates_pps.values()) / MPPS
            series.add(f"{tenants}T", value)
        table.add_series(series)
    return table


def frame_size_throughput(
        scenario: TrafficScenario = TrafficScenario.P2V) -> Table:
    """Goodput vs frame size: pps-bound at 64 B, wire-bound at MTU."""
    table = Table(
        title=f"Throughput vs frame size ({scenario.value}, isolated "
              "mode, Gbps goodput)",
        unit="Gbps",
        fmt=lambda v: f"{v:.2f}",
    )
    configs = (("Baseline(2)", SecurityLevel.BASELINE, 1, 2),
               ("L2(2)", SecurityLevel.LEVEL_2, 2, 1),
               ("L2(4)", SecurityLevel.LEVEL_2, 4, 1))
    for label, level, vms, cores in configs:
        series = Series(label=label)
        for size in FRAME_SIZES:
            spec = DeploymentSpec(level=level, num_vswitch_vms=vms,
                                  baseline_cores=cores,
                                  resource_mode=ResourceMode.ISOLATED)
            d = build_deployment(spec, scenario)
            result = throughput(d, scenario, frame_bytes=size)
            series.add(f"{size}B",
                       pps_to_bps(result.aggregate_pps, size) / GBPS)
        table.add_series(series)
    return table
