"""Fault isolation: what a vswitch crash takes down.

The flip side of the paper's security argument is availability: the
Baseline's single co-located vswitch is a single point of failure for
*every* tenant's network, while an MTS compartment crash blacks out
only its own tenants.  This experiment crashes one vswitch mid-run,
restores it, and reports per-tenant availability over the outage
window.

The crash rides the declarative chaos layer: the default plan is a
scripted ``vswitch-crash`` at ``phase`` clearing at ``2*phase`` --
exactly the crash the pre-chaos version hard-coded, so the legacy
table is byte-identical -- but the measurement windows now come from
the session's *observed* outage (injection and repair timestamps), and
the watchdog's measured detection latency is reported alongside.
Passing a different plan via the spec's ``faults`` field reuses the
same accounting for arbitrary campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.faults.plan import scripted_crash
from repro.faults.session import ChaosSession
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS

RATE_PER_TENANT = 5 * KPPS

WORKLOAD = "ext.fault-isolation"


@dataclass
class AvailabilityResult:
    label: str
    #: tenant -> delivered fraction during the outage window.
    during_outage: Dict[int, float]
    #: tenant -> delivered fraction after recovery.
    after_recovery: Dict[int, float]

    def tenants_fully_down(self) -> List[int]:
        return [t for t, f in self.during_outage.items() if f < 0.01]

    def tenants_unaffected(self) -> List[int]:
        return [t for t, f in self.during_outage.items() if f > 0.99]


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: three equal phases -- healthy, crashed,
    recovered -- with per-tenant delivery fractions for the last two
    (``during:t<N>`` / ``after:t<N>`` keys)."""
    from repro.faults import runtime

    phase = spec.duration / 3.0
    crash_index = int(spec.param("crash_index", 0))
    claimed_plan, _ = runtime.claim()  # chaos-aware: no harness hook
    plan = spec.faults or claimed_plan
    if plan is None or not plan.faults:
        # The legacy hard-coded fault: crash at phase, repair at
        # 2*phase (scripted, so the supervisor stays out of the way).
        plan = scripted_crash(compartment=crash_index, at=phase,
                              duration=phase)

    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(rate_per_flow_pps=RATE_PER_TENANT)

    session = ChaosSession(deployment, harness, plan, seed=spec.seed)
    session.arm(3 * phase)
    harness.run(duration=3 * phase, warmup=0.0)
    summary = session.finish()

    num_tenants = spec.deployment.num_tenants

    def fractions(t0: float, t1: float) -> Dict[int, float]:
        expected = RATE_PER_TENANT * (t1 - t0)
        return {
            t: min(1.0, harness.monitor.delivered_in_window(t0, t1, flow_id=t)
                   / expected)
            for t in range(num_tenants)
        }

    # Phase accounting from the *observed* outage: the session's first
    # outage window (injection .. repair), not assumed timestamps.  For
    # the default plan these are exactly phase and 2*phase.
    windows = session.outage_windows()
    t_down, t_up = windows[0] if windows else (phase, 2 * phase)
    # Give recovery a small settle margin inside the third phase.
    during = fractions(t_down, t_up)
    after = fractions(t_up + phase / 5, 3 * phase - phase / 5)
    values: Dict[str, float] = {}
    for t in range(num_tenants):
        values[f"during:t{t}"] = during[t]
        values[f"after:t{t}"] = after[t]
    values["detect_latency"] = summary["detect_latency"]
    values["outage"] = t_up - t_down
    values["violations"] = summary["violations"]
    return values


def measure(spec: DeploymentSpec, crash_index: int = 0,
            phase: float = 0.05, seed: int = 0) -> AvailabilityResult:
    """Three equal phases: healthy, crashed, recovered."""
    values = measure_scenario(ScenarioSpec(
        workload=WORKLOAD, deployment=spec, traffic=TrafficScenario.P2V,
        duration=3 * phase, seed=seed, label=spec.label,
        params={"crash_index": crash_index}))
    return AvailabilityResult(
        label=spec.label,
        during_outage={t: values[f"during:t{t}"]
                       for t in range(spec.num_tenants)},
        after_recovery={t: values[f"after:t{t}"]
                        for t in range(spec.num_tenants)},
    )


def configurations() -> List[DeploymentSpec]:
    return [
        DeploymentSpec(level=SecurityLevel.BASELINE,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_1,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                       resource_mode=ResourceMode.ISOLATED),
    ]


def scenarios(phase: float = 0.05, seed: int = 0) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=spec,
                     traffic=TrafficScenario.P2V, duration=3 * phase,
                     seed=seed, label=spec.label,
                     params={"crash_index": 0})
        for spec in configurations()
    ]


def tabulate(results: Sequence[ScenarioResult]) -> Table:
    table = Table(
        title="Fault isolation: one vswitch crashes for a third of the "
              "run (p2v, per-tenant delivered fraction during outage)",
        fmt=lambda v: f"{v:.2f}",
    )
    for result in results:
        series = Series(label=result.label)
        tenants = sorted(int(key.split(":t", 1)[1])
                         for key in result.values
                         if key.startswith("during:t"))
        for t in tenants:
            series.add(f"t{t}", result.values[f"during:t{t}"])
        table.add_series(series)
    return table


def run(phase: float = 0.05, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate(default_engine().run(scenarios(phase=phase, seed=seed)))
