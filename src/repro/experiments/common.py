"""Shared experiment plumbing: the evaluation's configuration matrices.

The paper evaluates three resource rows (Fig. 5 / Fig. 6 rows):

- **shared** (kernel datapath): Baseline (1 core, sharing the host
  core), Level-1, Level-2 with 2 and with 4 vswitch VMs -- all vswitch
  compartments stacked on one physical core;
- **isolated** (kernel datapath): the Baseline gets cores proportional
  to the compartment count it is compared against (1, 2, 4), each MTS
  compartment gets its own core;
- **dpdk** (Level-3, isolated only): same matrix with the user-space
  datapath.

Repetition helper: the models are deterministic, so run-to-run
variation is emulated with a small seeded relative jitter (the paper's
5 repetitions with 95% confidence are reproduced mechanically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.measure.stats import mean_confidence_interval
from repro.sim.rng import RngStreams


class EvalMode:
    """The three rows of Fig. 5 / Fig. 6."""

    SHARED = "shared"
    ISOLATED = "isolated"
    DPDK = "dpdk"

    ALL = (SHARED, ISOLATED, DPDK)


@dataclass(frozen=True)
class ConfigPoint:
    """One bar/curve of a figure row."""

    label: str
    level: SecurityLevel
    num_vswitch_vms: int
    baseline_cores: int
    resource_mode: ResourceMode
    user_space: bool

    def spec(self, nic_ports: int = 2, num_tenants: int = 4) -> DeploymentSpec:
        return DeploymentSpec(
            level=self.level,
            num_tenants=num_tenants,
            num_vswitch_vms=self.num_vswitch_vms,
            resource_mode=self.resource_mode,
            user_space=self.user_space,
            baseline_cores=self.baseline_cores,
            nic_ports=nic_ports,
        )

    def supports(self, scenario: TrafficScenario,
                 num_tenants: int = 4) -> bool:
        """False where the paper also had to skip (v2v with per-tenant
        compartments)."""
        try:
            self.spec().validate_scenario(scenario)
        except Exception:
            return False
        return True


def configs_for_mode(mode: str) -> List[ConfigPoint]:
    if mode == EvalMode.SHARED:
        return [
            ConfigPoint("Baseline", SecurityLevel.BASELINE, 1, 1,
                        ResourceMode.SHARED, False),
            ConfigPoint("L1", SecurityLevel.LEVEL_1, 1, 1,
                        ResourceMode.SHARED, False),
            ConfigPoint("L2(2)", SecurityLevel.LEVEL_2, 2, 1,
                        ResourceMode.SHARED, False),
            ConfigPoint("L2(4)", SecurityLevel.LEVEL_2, 4, 1,
                        ResourceMode.SHARED, False),
        ]
    if mode == EvalMode.ISOLATED:
        return [
            ConfigPoint("Baseline(1)", SecurityLevel.BASELINE, 1, 1,
                        ResourceMode.ISOLATED, False),
            ConfigPoint("Baseline(2)", SecurityLevel.BASELINE, 1, 2,
                        ResourceMode.ISOLATED, False),
            ConfigPoint("Baseline(4)", SecurityLevel.BASELINE, 1, 4,
                        ResourceMode.ISOLATED, False),
            ConfigPoint("L1", SecurityLevel.LEVEL_1, 1, 1,
                        ResourceMode.ISOLATED, False),
            ConfigPoint("L2(2)", SecurityLevel.LEVEL_2, 2, 1,
                        ResourceMode.ISOLATED, False),
            ConfigPoint("L2(4)", SecurityLevel.LEVEL_2, 4, 1,
                        ResourceMode.ISOLATED, False),
        ]
    if mode == EvalMode.DPDK:
        return [
            ConfigPoint("Baseline(1)+L3", SecurityLevel.BASELINE, 1, 1,
                        ResourceMode.ISOLATED, True),
            ConfigPoint("Baseline(2)+L3", SecurityLevel.BASELINE, 1, 2,
                        ResourceMode.ISOLATED, True),
            ConfigPoint("Baseline(4)+L3", SecurityLevel.BASELINE, 1, 4,
                        ResourceMode.ISOLATED, True),
            ConfigPoint("L1+L3", SecurityLevel.LEVEL_1, 1, 1,
                        ResourceMode.ISOLATED, True),
            ConfigPoint("L2(2)+L3", SecurityLevel.LEVEL_2, 2, 1,
                        ResourceMode.ISOLATED, True),
            ConfigPoint("L2(4)+L3", SecurityLevel.LEVEL_2, 4, 1,
                        ResourceMode.ISOLATED, True),
        ]
    raise ValueError(f"unknown eval mode {mode!r}")


def repeat_with_noise(
    value_fn: Callable[[], float],
    repetitions: int = 5,
    rel_sigma: float = 0.01,
    seed: int = 0,
    stream: str = "noise",
    streams: Optional[RngStreams] = None,
) -> Tuple[float, float]:
    """Emulate the paper's 5-repetition mean with 95% confidence.

    The underlying models are deterministic; run-to-run variation of a
    real testbed is emulated as a small seeded Gaussian relative jitter.
    The jitter draws from the named ``stream`` of an
    :class:`~repro.sim.rng.RngStreams` family -- the same master-seed
    mechanism that governs the DES -- so experiment noise is stable
    across processes and uncorrelated between call sites (name the
    stream after the measurement: ``"apache.rps:L2(2):p2v"``).  Pass
    ``streams`` to share a family across measurements; otherwise one is
    derived from ``seed``.  Returns ``(mean, ci_half_width)``.
    """
    rng = (streams if streams is not None else RngStreams(seed)).stream(stream)
    base = value_fn()
    samples = [base * (1.0 + rng.gauss(0.0, rel_sigma))
               for _ in range(repetitions)]
    return mean_confidence_interval(samples)
