"""The policy-injection / flow-cache DoS (Csikor et al. [15]).

One of the two attacks motivating the paper: "Csikor et al. identified
a severe performance isolation vulnerability, also in OvS, which
results in a low-resource cross-tenant denial-of-service attack."  The
mechanism is the vswitch's flow cache: packets that never hit it force
slow-path upcalls costing ~100x a fast-path pass, so an attacker with
a *tiny* packet budget (here 40 kpps of randomized-source-port UDP --
less than 2 % of the datapath's fast-path capacity) can burn the
shared vswitch's entire core.

The experiment measures the victims' delivery and latency while the
attacker runs cache-busting traffic, per architecture -- and contrasts
the attacker's budget with the brute-force flood the noisy-neighbor
experiment needs for the same damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.measure.reporting import Series, Table
from repro.measure.stats import percentile
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, USEC

ATTACKER = 0
VICTIMS = (1, 2, 3)

#: The whole point: a *low* attack rate.  40 kpps of upcalls at
#: ~150k cycles each is ~6 G cycles/s of slow-path work -- three
#: 2.1 GHz cores' worth -- from under 2% of line rate.
ATTACK_RATE_PPS = 40 * KPPS
VICTIM_RATE_PPS = 10 * KPPS

WORKLOAD = "ext.policy-injection"

_HIT_RATE_PREFIX = "cache_hit_rate:"


@dataclass
class PolicyInjectionResult:
    label: str
    victim_delivery_fraction: float
    victim_p99_latency: float
    attacker_rate_pps: float
    cache_hit_rate: Dict[str, float]


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: victim metrics under cache-busting traffic.

    Per-bridge flow-cache hit rates ride along as
    ``cache_hit_rate:<bridge>`` keys.
    """
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    harness = TestbedHarness(deployment)
    harness.add_tenant_flow(ATTACKER, ATTACK_RATE_PPS,
                            randomize_src_port=True)
    for victim in VICTIMS:
        harness.add_tenant_flow(victim, VICTIM_RATE_PPS)
    harness.run(duration=spec.duration, warmup=spec.warmup)

    t0, t1 = spec.warmup, spec.duration
    sent_per_victim = VICTIM_RATE_PPS * (t1 - t0)
    delivered = sum(harness.monitor.delivered_in_window(t0, t1, flow_id=v)
                    for v in VICTIMS)
    latencies: List[float] = []
    for victim in VICTIMS:
        latencies.extend(
            harness.monitor.latencies_in_window(t0, t1, flow_id=victim))
    values = {
        "victim_delivery_fraction": min(
            1.0, delivered / (sent_per_victim * len(VICTIMS))),
        "victim_p99_latency_s": (percentile(latencies, 99) if latencies
                                 else float("inf")),
        "attacker_rate_pps": ATTACK_RATE_PPS,
    }
    for bridge in deployment.bridges:
        if bridge.cache is not None:
            values[f"{_HIT_RATE_PREFIX}{bridge.name}"] = \
                bridge.cache.stats.hit_rate
    return values


def measure(spec: DeploymentSpec, duration: float = 0.1,
            warmup: float = 0.02, seed: int = 0) -> PolicyInjectionResult:
    values = measure_scenario(ScenarioSpec(
        workload=WORKLOAD, deployment=spec, traffic=TrafficScenario.P2V,
        duration=duration, warmup=warmup, seed=seed, label=spec.label))
    return PolicyInjectionResult(
        label=spec.label,
        victim_delivery_fraction=values["victim_delivery_fraction"],
        victim_p99_latency=values["victim_p99_latency_s"],
        attacker_rate_pps=values["attacker_rate_pps"],
        cache_hit_rate={
            key[len(_HIT_RATE_PREFIX):]: rate
            for key, rate in values.items()
            if key.startswith(_HIT_RATE_PREFIX)
        },
    )


def configurations() -> List[DeploymentSpec]:
    return [
        DeploymentSpec(level=SecurityLevel.BASELINE,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_1,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                       resource_mode=ResourceMode.ISOLATED),
    ]


def scenarios(duration: float = 0.1, warmup: float = 0.02,
              seed: int = 0) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=spec,
                     traffic=TrafficScenario.P2V, duration=duration,
                     warmup=warmup, seed=seed, label=spec.label)
        for spec in configurations()
    ]


def tabulate(results: Sequence[ScenarioResult]) -> Table:
    table = Table(
        title="Policy-injection DoS: 40 kpps of cache-busting traffic "
              "from tenant 0 (p2v)",
        fmt=lambda v: f"{v:.3g}",
    )
    delivery = Series(label="victim delivery fraction")
    latency = Series(label="victim p99 latency (us)")
    for result in results:
        delivery.add(result.label, result.values["victim_delivery_fraction"])
        latency.add(result.label,
                    result.values["victim_p99_latency_s"] / USEC)
    table.add_series(delivery)
    table.add_series(latency)
    return table


def run(duration: float = 0.1, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate(default_engine().run(
        scenarios(duration=duration, seed=seed)))
