"""Fig. 6(c,h,m) and (e,j,o): Memcached throughput and response time.

memslap with the default 90/10 set/get mix against each tenant's
memcached; 100 s, 5 repetitions, 95% confidence.  v2v runs two
client-server pairs (others forward), as in the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode, repeat_with_noise
from repro.measure.reporting import Series, Table
from repro.units import MSEC
from repro.workloads.memcached import MemcachedModel

SCENARIOS = (TrafficScenario.P2V, TrafficScenario.V2V)


def memcached_metrics(config: ConfigPoint,
                      scenario: TrafficScenario) -> Tuple[float, float]:
    """(aggregate ops/s, mean response time seconds)."""
    deployment = build_deployment(config.spec(nic_ports=1), scenario)
    report = MemcachedModel(deployment, scenario).run()
    return report.aggregate_ops, report.mean_response_time


def run_throughput(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(c)", EvalMode.ISOLATED: "Fig. 6(h)",
              EvalMode.DPDK: "Fig. 6(m)"}[mode]
    table = Table(
        title=f"{figure} Memcached throughput, {mode} mode",
        unit="ops/s",
        fmt=lambda v: f"{v:.0f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            mean, _ci = repeat_with_noise(
                lambda: memcached_metrics(config, scenario)[0],
                seed=hash(("mc-ops", config.label, scenario.value)) & 0xFFFF,
            )
            series.add(scenario.value, mean)
        table.add_series(series)
    return table


def run_response_time(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 6(e)", EvalMode.ISOLATED: "Fig. 6(j)",
              EvalMode.DPDK: "Fig. 6(o)"}[mode]
    table = Table(
        title=f"{figure} Memcached response time, {mode} mode",
        unit="ms",
        fmt=lambda v: f"{v:.2f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            mean, _ci = repeat_with_noise(
                lambda: memcached_metrics(config, scenario)[1],
                seed=hash(("mc-rt", config.label, scenario.value)) & 0xFFFF,
            )
            series.add(scenario.value, mean / MSEC)
        table.add_series(series)
    return table


def run_all() -> Dict[str, Table]:
    tables = {}
    for mode in EvalMode.ALL:
        tables[f"{mode}-throughput"] = run_throughput(mode)
        tables[f"{mode}-response-time"] = run_response_time(mode)
    return tables
