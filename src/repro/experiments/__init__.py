"""Experiment modules: one per paper table/figure.

- :mod:`repro.experiments.common` -- the configuration matrices of the
  evaluation (which security levels and core counts appear in each row
  of Fig. 5/6) and repetition/CI helpers.
- :mod:`repro.experiments.fig5_throughput` -- Fig. 5(a,d,g).
- :mod:`repro.experiments.fig5_latency` -- Fig. 5(b,e,h).
- :mod:`repro.experiments.fig5_resources` -- Fig. 5(c,f,i).
- :mod:`repro.experiments.fig6_iperf` -- Fig. 6(a,f,k).
- :mod:`repro.experiments.fig6_apache` -- Fig. 6(b,g,l,d,i,n).
- :mod:`repro.experiments.fig6_memcached` -- Fig. 6(c,h,m,e,j,o).
- :mod:`repro.experiments.table1_survey` -- Table 1.
- :mod:`repro.experiments.vf_table` -- the section 3.2 VF budgets.
- :mod:`repro.experiments.runner` -- run everything, render all tables.
"""

from repro.experiments.common import ConfigPoint, EvalMode, configs_for_mode

__all__ = ["ConfigPoint", "EvalMode", "configs_for_mode"]
