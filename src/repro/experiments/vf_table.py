"""Section 3.2's VF-budget examples, regenerated from the formulas.

"In a basic Level-1 setup hosting 1 tenant ... the total VFs is 3.
Similarly for 4 tenants, the total VFs is 9.  For a basic Level-2 setup
hosting 2 tenants ... the total VFs is 6.  Similarly for 4 tenants, the
total VFs is 12."
"""

from __future__ import annotations

from repro.core.levels import SecurityLevel
from repro.core.vf_allocation import max_tenants, vf_budget
from repro.measure.reporting import Series, Table


def run() -> Table:
    table = Table(
        title="Section 3.2 VF budgets (1 NIC port)",
        unit="VFs",
        fmt=lambda v: f"{v:.0f}",
    )
    level1 = Series(label="Level-1")
    for tenants in (1, 2, 4, 8):
        budget = vf_budget(SecurityLevel.LEVEL_1, tenants, nic_ports=1)
        level1.add(f"{tenants}T", float(budget.total))
    table.add_series(level1)

    level2 = Series(label="Level-2 (per-tenant)")
    for tenants in (1, 2, 4, 8):
        budget = vf_budget(SecurityLevel.LEVEL_2, tenants,
                           num_vswitch_vms=tenants, nic_ports=1)
        level2.add(f"{tenants}T", float(budget.total))
    table.add_series(level2)

    ceiling = Series(label="max tenants @64 VFs")
    ceiling.add("L1", float(max_tenants(SecurityLevel.LEVEL_1, nic_ports=1)))
    ceiling.add("L2/tenant", float(max_tenants(SecurityLevel.LEVEL_2,
                                               nic_ports=1,
                                               per_tenant_vswitch=True)))
    table.add_series(ceiling)
    return table
