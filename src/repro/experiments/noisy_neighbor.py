"""Performance isolation under a noisy neighbor (extension of §6).

The paper's discussion section flags cross-tenant performance
interference (covert channels, the Csikor et al. cloud-dataplane DoS)
as the residual risk of *sharing* a vswitch.  This experiment
quantifies it: tenant 0 (the attacker) floods its own virtual network
at far beyond the datapath's capacity while tenants 1-3 (victims) send
a modest, fully-sustainable rate.  We measure what the victims actually
get, per architecture:

- **Baseline / Level-1**: attacker and victims share one datapath and
  one ingress ring -- the flood crowds the victims out (loss) and
  inflates their latency.
- **Level-2**: the attacker's flood is confined to its own vswitch
  compartment; victims behind other compartments are untouched.

This turns the paper's qualitative "least common mechanism" argument
into a measured, reproducible number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.core.levels import ResourceMode, SecurityLevel
from repro.measure.reporting import Series, Table
from repro.measure.stats import percentile
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, MPPS, USEC

ATTACKER = 0
VICTIMS = (1, 2, 3)

#: The flood: well past any kernel datapath's capacity.
ATTACK_RATE_PPS = 2.0 * MPPS
#: What each victim asks for: trivially sustainable on its own.
VICTIM_RATE_PPS = 10 * KPPS

WORKLOAD = "ext.noisy-neighbor"


@dataclass
class NoisyNeighborResult:
    label: str
    victim_delivery_fraction: float
    victim_p99_latency: float
    attacker_delivered_pps: float


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: victim delivery/latency under the flood."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    # Batched fast path where it is exact; chaos compositions (the
    # billing fault-payer runs) silently fall back to per-frame.
    harness = TestbedHarness(deployment, batch=True)
    harness.add_tenant_flow(ATTACKER, ATTACK_RATE_PPS)
    for victim in VICTIMS:
        harness.add_tenant_flow(victim, VICTIM_RATE_PPS)
    harness.run(duration=spec.duration, warmup=spec.warmup)

    t0, t1 = spec.warmup, spec.duration
    sent_per_victim = VICTIM_RATE_PPS * (t1 - t0)
    delivered = sum(
        harness.monitor.delivered_in_window(t0, t1, flow_id=v)
        for v in VICTIMS
    )
    victim_latencies: List[float] = []
    for victim in VICTIMS:
        victim_latencies.extend(
            harness.monitor.latencies_in_window(t0, t1, flow_id=victim))
    p99 = percentile(victim_latencies, 99) if victim_latencies else float("inf")
    attacker_pps = harness.monitor.delivered_in_window(
        t0, t1, flow_id=ATTACKER) / (t1 - t0)
    return {
        "victim_delivery_fraction": min(
            1.0, delivered / (sent_per_victim * len(VICTIMS))),
        "victim_p99_latency_s": p99,
        "attacker_delivered_pps": attacker_pps,
    }


def measure(spec: DeploymentSpec, duration: float = 0.1,
            warmup: float = 0.02, seed: int = 0) -> NoisyNeighborResult:
    values = measure_scenario(ScenarioSpec(
        workload=WORKLOAD, deployment=spec, traffic=TrafficScenario.P2V,
        duration=duration, warmup=warmup, seed=seed, label=spec.label))
    return NoisyNeighborResult(
        label=spec.label,
        victim_delivery_fraction=values["victim_delivery_fraction"],
        victim_p99_latency=values["victim_p99_latency_s"],
        attacker_delivered_pps=values["attacker_delivered_pps"],
    )


def configurations() -> List[DeploymentSpec]:
    return [
        DeploymentSpec(level=SecurityLevel.BASELINE,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_1,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                       resource_mode=ResourceMode.ISOLATED),
    ]


def scenarios(duration: float = 0.1, warmup: float = 0.02,
              seed: int = 0) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=spec,
                     traffic=TrafficScenario.P2V, duration=duration,
                     warmup=warmup, seed=seed, label=spec.label)
        for spec in configurations()
    ]


def tabulate(results: Sequence[ScenarioResult]) -> Table:
    table = Table(
        title="Noisy neighbor: tenant 0 floods at 2 Mpps, victims ask "
              "10 kpps each (p2v)",
        fmt=lambda v: f"{v:.3g}",
    )
    delivery = Series(label="victim delivery fraction")
    latency = Series(label="victim p99 latency (us)")
    attacker = Series(label="attacker delivered (Mpps)")
    for result in results:
        delivery.add(result.label, result.values["victim_delivery_fraction"])
        latency.add(result.label,
                    result.values["victim_p99_latency_s"] / USEC)
        attacker.add(result.label,
                     result.values["attacker_delivered_pps"] / MPPS)
    table.add_series(delivery)
    table.add_series(latency)
    table.add_series(attacker)
    return table


def run(duration: float = 0.1, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate(default_engine().run(
        scenarios(duration=duration, seed=seed)))
