"""Table 1: the vswitch design survey, rendered + section 2.1's stats."""

from __future__ import annotations

from repro.measure.reporting import Series, Table
from repro.security.survey import SURVEY, render_table, survey_statistics


def run() -> Table:
    """The headline fractions of section 2.1 as a table."""
    stats = survey_statistics()
    table = Table(
        title="Table 1 summary: design characteristics of surveyed vswitches",
        fmt=lambda v: f"{v:.2f}",
    )
    series = Series(label="fraction")
    series.add("monolithic", stats["monolithic_fraction"])
    series.add("co-located", stats["colocated_fraction"])
    series.add("kernel-involved", stats["kernel_involved_fraction"])
    table.add_series(series)
    count = Series(label="count")
    count.add("monolithic", stats["monolithic_fraction"] * stats["total"])
    count.add("co-located", stats["colocated_fraction"] * stats["total"])
    count.add("kernel-involved",
              stats["kernel_involved_fraction"] * stats["total"])
    table.add_series(count)
    return table


def render_full() -> str:
    return render_table(SURVEY)
