"""Fig. 5(c,f,i): CPU cores and memory per configuration.

Reads the resource accounting off built deployments: physical cores
consumed by virtual networking (host + vswitch compartments) and total
1 GB hugepages.  These are exact (not modelled) quantities -- the same
arithmetic the paper's bars show: e.g. the shared mode costs one extra
core regardless of compartment count, while isolated/DPDK modes grow
linearly.
"""

from __future__ import annotations

from typing import Dict

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table


def run(mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 5(c)", EvalMode.ISOLATED: "Fig. 5(f)",
              EvalMode.DPDK: "Fig. 5(i)"}[mode]
    table = Table(
        title=f"{figure} resources, {mode} mode",
        fmt=lambda v: f"{v:.0f}",
    )
    for config in configs_for_mode(mode):
        deployment = build_deployment(config.spec(), TrafficScenario.P2V)
        report = deployment.resource_report()
        series = Series(label=config.label)
        series.add("networking-cores", float(report.networking_cores))
        series.add("tenant-cores", float(report.tenant_cores))
        series.add("hugepages-1G", float(report.total_hugepages_1g))
        table.add_series(series)
    return table


def run_all() -> Dict[str, Table]:
    return {mode: run(mode) for mode in EvalMode.ALL}
