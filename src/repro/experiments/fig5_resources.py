"""Fig. 5(c,f,i): CPU cores and memory per configuration.

Reads the resource accounting off built deployments: physical cores
consumed by virtual networking (host + vswitch compartments) and total
1 GB hugepages.  These are exact (not modelled) quantities -- the same
arithmetic the paper's bars show: e.g. the shared mode costs one extra
core regardless of compartment count, while isolated/DPDK modes grow
linearly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec

WORKLOAD = "fig5.resources"

#: Column order of the figure's bars.
COLUMNS = ("networking-cores", "tenant-cores", "hugepages-1G")


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: exact resource accounting of one spec."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    report = deployment.resource_report()
    return {
        "networking-cores": float(report.networking_cores),
        "tenant-cores": float(report.tenant_cores),
        "hugepages-1G": float(report.total_hugepages_1g),
    }


def scenarios(mode: str = EvalMode.SHARED,
              seed: int = 0) -> List[ScenarioSpec]:
    """One figure row as engine-consumable specs."""
    return [
        ScenarioSpec(
            workload=WORKLOAD,
            deployment=config.spec(),
            traffic=TrafficScenario.P2V,
            seed=seed,
            eval_mode=mode,
            label=config.label,
        )
        for config in configs_for_mode(mode)
    ]


def tabulate(results: Sequence[ScenarioResult],
             mode: str = EvalMode.SHARED) -> Table:
    figure = {EvalMode.SHARED: "Fig. 5(c)", EvalMode.ISOLATED: "Fig. 5(f)",
              EvalMode.DPDK: "Fig. 5(i)"}[mode]
    table = Table(
        title=f"{figure} resources, {mode} mode",
        fmt=lambda v: f"{v:.0f}",
    )
    for result in results:
        series = Series(label=result.label)
        for column in COLUMNS:
            series.add(column, result.values[column])
        table.add_series(series)
    return table


def run(mode: str = EvalMode.SHARED, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    results = default_engine().run(scenarios(mode, seed=seed))
    return tabulate(results, mode)


def run_all() -> Dict[str, Table]:
    return {mode: run(mode) for mode in EvalMode.ALL}
