"""Fig. 5(a,d,g): aggregate forwarding throughput, 64 B frames.

The load generator offers 4 flows at line rate (14.88 Mpps aggregate at
64 B on 10G); the reported number is the aggregate delivered rate,
computed by the max-min capacity solver over the deployment's resource
pools.  ``run(mode)`` produces one figure row: a table of Mpps per
(scenario, configuration).
"""

from __future__ import annotations

from typing import Dict

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.paths import throughput
from repro.units import LINE_RATE_10G_64B_PPS, MPPS

SCENARIOS = (TrafficScenario.P2P, TrafficScenario.P2V, TrafficScenario.V2V)


def aggregate_mpps(config, scenario: TrafficScenario,
                   frame_bytes: int = 64,
                   calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Saturation throughput of one configuration point, in Mpps."""
    spec = config.spec()
    deployment = build_deployment(spec, scenario, calibration=calibration)
    offered_per_flow = LINE_RATE_10G_64B_PPS / spec.num_tenants
    result = throughput(deployment, scenario, frame_bytes=frame_bytes,
                        offered_per_flow_pps=offered_per_flow)
    return result.aggregate_pps / MPPS


def run(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
        calibration: Calibration = DEFAULT_CALIBRATION) -> Table:
    """One row of Fig. 5's throughput column."""
    figure = {EvalMode.SHARED: "Fig. 5(a)", EvalMode.ISOLATED: "Fig. 5(d)",
              EvalMode.DPDK: "Fig. 5(g)"}[mode]
    table = Table(
        title=f"{figure} throughput, {mode} mode, {frame_bytes} B frames",
        unit="Mpps",
        fmt=lambda v: f"{v:.2f}",
    )
    for config in configs_for_mode(mode):
        series = Series(label=config.label)
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            series.add(scenario.value,
                       aggregate_mpps(config, scenario, frame_bytes,
                                      calibration))
        table.add_series(series)
    return table


def run_all(frame_bytes: int = 64) -> Dict[str, Table]:
    return {mode: run(mode, frame_bytes) for mode in EvalMode.ALL}
