"""Fig. 5(a,d,g): aggregate forwarding throughput, 64 B frames.

The load generator offers 4 flows at line rate (14.88 Mpps aggregate at
64 B on 10G); the reported number is the aggregate delivered rate,
computed by the max-min capacity solver over the deployment's resource
pools.  ``scenarios(mode)`` declares one figure row as specs for the
scenario engine, ``tabulate`` turns the engine's results back into the
figure's table, and ``run(mode)`` composes the two.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.spec import TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.paths import throughput
from repro.scenario.spec import (
    ScenarioResult,
    ScenarioSpec,
    calibration_ref,
)
from repro.units import LINE_RATE_10G_64B_PPS, MPPS

SCENARIOS = (TrafficScenario.P2P, TrafficScenario.P2V, TrafficScenario.V2V)

WORKLOAD = "fig5.throughput"


def aggregate_mpps(config, scenario: TrafficScenario,
                   frame_bytes: int = 64,
                   calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Saturation throughput of one configuration point, in Mpps."""
    spec = config.spec()
    deployment = build_deployment(spec, scenario, calibration=calibration)
    offered_per_flow = LINE_RATE_10G_64B_PPS / spec.num_tenants
    result = throughput(deployment, scenario, frame_bytes=frame_bytes,
                        offered_per_flow_pps=offered_per_flow)
    return result.aggregate_pps / MPPS


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: saturation throughput of one spec."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    offered_per_flow = (LINE_RATE_10G_64B_PPS
                        / spec.deployment.num_tenants)
    result = throughput(deployment, spec.traffic,
                        frame_bytes=int(spec.param("frame_bytes", 64)),
                        offered_per_flow_pps=offered_per_flow)
    return {"mpps": result.aggregate_pps / MPPS}


def scenarios(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
              seed: int = 0,
              calibration: Calibration = DEFAULT_CALIBRATION
              ) -> List[ScenarioSpec]:
    """One figure row as engine-consumable specs."""
    specs: List[ScenarioSpec] = []
    for config in configs_for_mode(mode):
        for scenario in SCENARIOS:
            if not config.supports(scenario):
                continue
            specs.append(ScenarioSpec(
                workload=WORKLOAD,
                deployment=config.spec(),
                traffic=scenario,
                seed=seed,
                eval_mode=mode,
                label=config.label,
                params={"frame_bytes": frame_bytes},
                calibration_ref=calibration_ref(calibration),
            ))
    return specs


def tabulate(results: Sequence[ScenarioResult],
             mode: str = EvalMode.SHARED,
             frame_bytes: int = 64) -> Table:
    figure = {EvalMode.SHARED: "Fig. 5(a)", EvalMode.ISOLATED: "Fig. 5(d)",
              EvalMode.DPDK: "Fig. 5(g)"}[mode]
    table = Table(
        title=f"{figure} throughput, {mode} mode, {frame_bytes} B frames",
        unit="Mpps",
        fmt=lambda v: f"{v:.2f}",
    )
    by_label: Dict[str, Series] = {}
    for result in results:
        series = by_label.get(result.label)
        if series is None:
            series = by_label[result.label] = Series(label=result.label)
            table.add_series(series)
        series.add(result.traffic, result.values["mpps"])
    return table


def run(mode: str = EvalMode.SHARED, frame_bytes: int = 64,
        seed: int = 0,
        calibration: Calibration = DEFAULT_CALIBRATION) -> Table:
    """One row of Fig. 5's throughput column."""
    from repro.experiments.runner import default_engine
    specs = scenarios(mode, frame_bytes, seed=seed, calibration=calibration)
    results = default_engine(calibration).run(specs)
    return tabulate(results, mode, frame_bytes)


def run_all(frame_bytes: int = 64) -> Dict[str, Table]:
    return {mode: run(mode, frame_bytes) for mode in EvalMode.ALL}
