"""The cost of deploying MTS: control-plane operations per configuration.

The paper's pitch includes operations: MTS is "incrementally deployable,
providing an inexpensive deployment experience for cloud operators" --
"MTS can easily be scripted into existing cloud systems".  This
experiment quantifies the scripting surface: how many primitive
operations (VM definitions, VF configurations, bridge ports, flow
rules, filters) each configuration takes to stand up, and what the
*delta* from the Baseline is -- the upgrade path's size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.deployment import plan_deployment
from repro.core.levels import SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec

#: Control-plane verbs grouped for reporting.
GROUPS = {
    "VMs": ("define-vm", "define-container"),
    "VFs": ("create-vf",),
    "bridge ports": ("add-port",),
    "apps": ("install-app",),
    "other": ("pin-cores", "alloc-hugepages", "install-filters",
              "program-flows"),
}

WORKLOAD = "ext.deployment-cost"


def op_counts(spec: DeploymentSpec,
              scenario: TrafficScenario = TrafficScenario.P2V) -> Dict[str, int]:
    plan = plan_deployment(spec, scenario)
    counts = {group: 0 for group in GROUPS}
    counts["total"] = len(plan)
    for group, verbs in GROUPS.items():
        counts[group] = sum(len(plan.with_verb(v)) for v in verbs)
    return counts


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: exact control-plane op counts of one spec."""
    counts = op_counts(spec.deployment, spec.traffic)
    return {key: float(value) for key, value in counts.items()}


def configurations() -> List[DeploymentSpec]:
    return [
        DeploymentSpec(level=SecurityLevel.BASELINE),
        DeploymentSpec(level=SecurityLevel.LEVEL_1),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4),
    ]


def scenarios(scenario: TrafficScenario = TrafficScenario.P2V,
              seed: int = 0) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=spec, traffic=scenario,
                     seed=seed, label=spec.label)
        for spec in configurations()
    ]


def tabulate(results: Sequence[ScenarioResult],
             scenario: TrafficScenario = TrafficScenario.P2V) -> Table:
    table = Table(
        title=f"Deployment cost: primitive control-plane operations "
              f"({scenario.value})",
        fmt=lambda v: f"{v:.0f}",
    )
    baseline_total = None
    for result in results:
        if baseline_total is None:
            baseline_total = result.values["total"]
        series = Series(label=result.label)
        for group in GROUPS:
            series.add(group, result.values[group])
        series.add("total", result.values["total"])
        series.add("delta vs Baseline",
                   result.values["total"] - baseline_total)
        table.add_series(series)
    return table


def run(scenario: TrafficScenario = TrafficScenario.P2V,
        seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate(default_engine().run(scenarios(scenario, seed=seed)),
                    scenario)
