"""The cost of deploying MTS: control-plane operations per configuration.

The paper's pitch includes operations: MTS is "incrementally deployable,
providing an inexpensive deployment experience for cloud operators" --
"MTS can easily be scripted into existing cloud systems".  This
experiment quantifies the scripting surface: how many primitive
operations (VM definitions, VF configurations, bridge ports, flow
rules, filters) each configuration takes to stand up, and what the
*delta* from the Baseline is -- the upgrade path's size.
"""

from __future__ import annotations

from typing import Dict

from repro.core.deployment import plan_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.measure.reporting import Series, Table

#: Control-plane verbs grouped for reporting.
GROUPS = {
    "VMs": ("define-vm", "define-container"),
    "VFs": ("create-vf",),
    "bridge ports": ("add-port",),
    "apps": ("install-app",),
    "other": ("pin-cores", "alloc-hugepages", "install-filters",
              "program-flows"),
}


def op_counts(spec: DeploymentSpec,
              scenario: TrafficScenario = TrafficScenario.P2V) -> Dict[str, int]:
    plan = plan_deployment(spec, scenario)
    counts = {group: 0 for group in GROUPS}
    counts["total"] = len(plan)
    for group, verbs in GROUPS.items():
        counts[group] = sum(len(plan.with_verb(v)) for v in verbs)
    return counts


def run(scenario: TrafficScenario = TrafficScenario.P2V) -> Table:
    table = Table(
        title=f"Deployment cost: primitive control-plane operations "
              f"({scenario.value})",
        fmt=lambda v: f"{v:.0f}",
    )
    configs = [
        DeploymentSpec(level=SecurityLevel.BASELINE),
        DeploymentSpec(level=SecurityLevel.LEVEL_1),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4),
    ]
    baseline_total = None
    for spec in configs:
        counts = op_counts(spec, scenario)
        if baseline_total is None:
            baseline_total = counts["total"]
        series = Series(label=spec.label)
        for group in GROUPS:
            series.add(group, float(counts[group]))
        series.add("total", float(counts["total"]))
        series.add("delta vs Baseline",
                   float(counts["total"] - baseline_total))
        table.add_series(series)
    return table
