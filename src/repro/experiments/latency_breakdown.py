"""PMU-style latency breakdown (the §6 "evaluation limitations" ask).

"For a deeper understanding of the performance improvement we obtained
in this paper using SR-IOV, further measurements are necessary, e.g.,
using the performance monitoring unit (PMU) to collect a breakdown of
the packet processing latencies."

The simulated dataplane charges every nanosecond of a frame's journey
to a component (``Frame.timings``); this experiment aggregates those
charges over a measurement window and answers the paper's open
question directly: where does each architecture spend its latency?

The expected story, quantified: the Baseline's p2v latency lives in
the vhost crossings and the tenant's Linux bridge; MTS replaces both
with microsecond-scale NIC traversals and spends its remaining budget
in the tenant's l2fwd poll loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.deployment import build_deployment
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.net.packet import Frame
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, USEC

COMPONENTS = ("wire", "nic", "vswitch.service", "vswitch.wait",
              "vswitch.queue", "vhost", "tenant")

WORKLOAD = "ext.latency-breakdown"

DEFAULT_AGGREGATE_PPS = 10 * KPPS


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: mean per-component latency (seconds)."""
    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    harness = TestbedHarness(deployment)
    aggregate_pps = float(spec.param("aggregate_pps",
                                     DEFAULT_AGGREGATE_PPS))
    harness.configure_tenant_flows(
        rate_per_flow_pps=aggregate_pps / spec.deployment.num_tenants)

    warmup = spec.warmup
    captured: List[Frame] = []
    harness.egress_tap.observe(
        lambda frame, now: captured.append(frame) if now >= warmup else None)
    harness.run(duration=spec.duration, warmup=warmup)
    if not captured:
        raise RuntimeError(f"no frames captured for {spec.display_label}")

    totals = {component: 0.0 for component in COMPONENTS}
    for frame in captured:
        for component in COMPONENTS:
            totals[component] += frame.timings.get(component, 0.0)
    return {component: total / len(captured)
            for component, total in totals.items()}


def measure_breakdown(
    spec: DeploymentSpec,
    scenario: TrafficScenario = TrafficScenario.P2V,
    aggregate_pps: float = DEFAULT_AGGREGATE_PPS,
    duration: float = 0.1,
    warmup: float = 0.02,
    seed: int = 0,
) -> Dict[str, float]:
    """Mean per-component latency (seconds) of delivered frames."""
    return measure_scenario(ScenarioSpec(
        workload=WORKLOAD, deployment=spec, traffic=scenario,
        duration=duration, warmup=warmup, seed=seed, label=spec.label,
        params={"aggregate_pps": aggregate_pps}))


def scenarios(mode: str = EvalMode.SHARED,
              scenario: TrafficScenario = TrafficScenario.P2V,
              duration: float = 0.1, warmup: float = 0.02,
              seed: int = 0) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=config.spec(),
                     traffic=scenario, duration=duration, warmup=warmup,
                     seed=seed, eval_mode=mode, label=config.label,
                     params={"aggregate_pps": DEFAULT_AGGREGATE_PPS})
        for config in configs_for_mode(mode)
        if config.supports(scenario)
    ]


def tabulate(results: Sequence[ScenarioResult],
             mode: str = EvalMode.SHARED,
             scenario: TrafficScenario = TrafficScenario.P2V) -> Table:
    table = Table(
        title=f"Latency breakdown ({scenario.value}, {mode} mode, "
              "10 kpps, mean per component)",
        unit="us",
        fmt=lambda v: f"{v:.1f}",
    )
    for result in results:
        series = Series(label=result.label)
        for component in COMPONENTS:
            if result.values[component] > 0:
                series.add(component, result.values[component] / USEC)
        series.add("TOTAL",
                   sum(result.values[c] for c in COMPONENTS) / USEC)
        table.add_series(series)
    return table


def run(mode: str = EvalMode.SHARED,
        scenario: TrafficScenario = TrafficScenario.P2V,
        duration: float = 0.1, seed: int = 0) -> Table:
    from repro.experiments.runner import default_engine
    results = default_engine().run(
        scenarios(mode, scenario, duration=duration, seed=seed))
    return tabulate(results, mode, scenario)
