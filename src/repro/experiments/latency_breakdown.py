"""PMU-style latency breakdown (the §6 "evaluation limitations" ask).

"For a deeper understanding of the performance improvement we obtained
in this paper using SR-IOV, further measurements are necessary, e.g.,
using the performance monitoring unit (PMU) to collect a breakdown of
the packet processing latencies."

The simulated dataplane charges every nanosecond of a frame's journey
to a component (``Frame.timings``); this experiment aggregates those
charges over a measurement window and answers the paper's open
question directly: where does each architecture spend its latency?

The expected story, quantified: the Baseline's p2v latency lives in
the vhost crossings and the tenant's Linux bridge; MTS replaces both
with microsecond-scale NIC traversals and spends its remaining budget
in the tenant's l2fwd poll loop.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.deployment import build_deployment
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.experiments.common import EvalMode, configs_for_mode
from repro.measure.reporting import Series, Table
from repro.net.packet import Frame
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS, USEC

COMPONENTS = ("wire", "nic", "vswitch.service", "vswitch.wait",
              "vswitch.queue", "vhost", "tenant")


def measure_breakdown(
    spec: DeploymentSpec,
    scenario: TrafficScenario = TrafficScenario.P2V,
    aggregate_pps: float = 10 * KPPS,
    duration: float = 0.1,
    warmup: float = 0.02,
    seed: int = 0,
) -> Dict[str, float]:
    """Mean per-component latency (seconds) of delivered frames."""
    deployment = build_deployment(spec, scenario, seed=seed)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(
        rate_per_flow_pps=aggregate_pps / spec.num_tenants)

    captured: List[Frame] = []
    harness.egress_tap.observe(
        lambda frame, now: captured.append(frame) if now >= warmup else None)
    harness.run(duration=duration, warmup=warmup)
    if not captured:
        raise RuntimeError(f"no frames captured for {spec.label}")

    totals = {component: 0.0 for component in COMPONENTS}
    for frame in captured:
        for component in COMPONENTS:
            totals[component] += frame.timings.get(component, 0.0)
    return {component: total / len(captured)
            for component, total in totals.items()}


def run(mode: str = EvalMode.SHARED,
        scenario: TrafficScenario = TrafficScenario.P2V,
        duration: float = 0.1) -> Table:
    table = Table(
        title=f"Latency breakdown ({scenario.value}, {mode} mode, "
              "10 kpps, mean per component)",
        unit="us",
        fmt=lambda v: f"{v:.1f}",
    )
    for config in configs_for_mode(mode):
        if not config.supports(scenario):
            continue
        breakdown = measure_breakdown(config.spec(), scenario,
                                      duration=duration)
        series = Series(label=config.label)
        for component in COMPONENTS:
            if breakdown[component] > 0:
                series.add(component, breakdown[component] / USEC)
        series.add("TOTAL", sum(breakdown.values()) / USEC)
        table.add_series(series)
    return table
