"""Security analysis: the paper's qualitative claims, made executable.

- :mod:`repro.security.components` -- the component/boundary graph of a
  deployment (tenant VMs, vswitches, host kernel, NIC, ...).
- :mod:`repro.security.compromise` -- the threat model of section 2.2:
  an attacker in a tenant VM who fully controls the vswitch serving it;
  computes exploit distance to the host and the cross-tenant blast
  radius.
- :mod:`repro.security.principles` -- scores deployments against the
  Saltzer-Schroeder principles the design is built on (least privilege,
  complete mediation, extra security boundary, least common mechanism).
- :mod:`repro.security.tcb` -- trusted-computing-base accounting.
- :mod:`repro.security.survey` -- the Table 1 dataset of 23 vswitch
  designs.
"""

from repro.security.components import Boundary, Component, ComponentKind, SystemGraph, component_graph
from repro.security.compromise import CompromiseAssessment, assess_compromise
from repro.security.principles import PrincipleScores, score_principles
from repro.security.tcb import TcbReport, tcb_report
from repro.security.survey import SURVEY, SurveyEntry, survey_statistics

__all__ = [
    "Boundary",
    "Component",
    "ComponentKind",
    "SystemGraph",
    "component_graph",
    "CompromiseAssessment",
    "assess_compromise",
    "PrincipleScores",
    "score_principles",
    "TcbReport",
    "tcb_report",
    "SURVEY",
    "SurveyEntry",
    "survey_statistics",
]
