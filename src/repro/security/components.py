"""Component/boundary graphs of deployments.

A deployment is abstracted as components connected by channels, each
channel labelled with the security boundary that must fail for an
attacker to cross it:

- ``NONE``: same protection domain (no boundary; e.g. kernel-resident
  vswitch code and the host kernel);
- ``USER_KERNEL``: the user/kernel split inside one OS;
- ``VM_ISOLATION``: the hypervisor boundary;
- ``HW_MEDIATION``: the SR-IOV NIC's VEB + VF isolation.

Crossing a boundary costs one independent exploit; the compromise
analysis (:mod:`repro.security.compromise`) computes minimum exploit
counts over this graph, which is exactly the "at least two distinct
security boundaries" arithmetic of the paper's section 2.3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core.deployment import Deployment


class ComponentKind(Enum):
    TENANT_VM = "tenant-vm"
    VSWITCH = "vswitch"          # the vswitch process itself
    VSWITCH_VM = "vswitch-vm"    # the VM a compartmentalized vswitch runs in
    HOST_KERNEL = "host-kernel"
    NIC = "nic"
    CONTROLLER = "controller"


class Boundary(Enum):
    """What must fail to cross a channel; ``exploit_cost`` boundaries
    count as independent security mechanisms.  ``TRUSTED_HW`` channels
    terminate on the NIC, which the threat model of section 2.2 assumes
    trustworthy (NICs, firmware and drivers are out of scope) -- they
    are not traversable by the attacker."""

    NONE = "none"
    USER_KERNEL = "user-kernel"
    VM_ISOLATION = "vm-isolation"
    #: Namespace/cgroup isolation: still one independent mechanism, but
    #: enforced by the very kernel it guards (a weaker boundary than a
    #: hypervisor -- section 3.1's compartmentalization menu).
    CONTAINER_ISOLATION = "container-isolation"
    HW_MEDIATION = "hw-mediation"
    TRUSTED_HW = "trusted-hw"

    @property
    def exploit_cost(self) -> Optional[int]:
        if self is Boundary.TRUSTED_HW:
            return None  # not traversable under the threat model
        return 0 if self is Boundary.NONE else 1


@dataclass(frozen=True)
class Component:
    name: str
    kind: ComponentKind
    tenant_id: Optional[int] = None


@dataclass
class Channel:
    a: str
    b: str
    boundary: Boundary


class SystemGraph:
    """Undirected component graph with boundary-weighted channels."""

    def __init__(self) -> None:
        self._components: Dict[str, Component] = {}
        self._channels: List[Channel] = []
        self._adjacency: Dict[str, List[Tuple[str, Boundary]]] = {}

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        self._adjacency[component.name] = []
        return component

    def connect(self, a: str, b: str, boundary: Boundary) -> None:
        if a not in self._components or b not in self._components:
            raise KeyError(f"unknown component in channel {a!r}-{b!r}")
        self._channels.append(Channel(a, b, boundary))
        self._adjacency[a].append((b, boundary))
        self._adjacency[b].append((a, boundary))

    def component(self, name: str) -> Component:
        return self._components[name]

    def components(self) -> List[Component]:
        return list(self._components.values())

    def components_of_kind(self, kind: ComponentKind) -> List[Component]:
        return [c for c in self._components.values() if c.kind == kind]

    def channels(self) -> List[Channel]:
        return list(self._channels)

    def neighbors(self, name: str) -> List[Tuple[str, Boundary]]:
        return list(self._adjacency[name])

    def min_exploits(self, src: str, dst: str) -> Optional[int]:
        """Minimum number of independent boundary failures to get from
        ``src`` to ``dst`` (Dijkstra over exploit costs)."""
        if src not in self._components or dst not in self._components:
            raise KeyError("unknown endpoint")
        dist: Dict[str, int] = {src: 0}
        heap: List[Tuple[int, str]] = [(0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == dst:
                return d
            if d > dist.get(node, 1 << 30):
                continue
            for neighbor, boundary in self._adjacency[node]:
                cost = boundary.exploit_cost
                if cost is None:
                    continue
                nd = d + cost
                if nd < dist.get(neighbor, 1 << 30):
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor))
        return None


def component_graph(deployment: Deployment) -> SystemGraph:
    """Build the boundary graph of a built deployment."""
    spec = deployment.spec
    graph = SystemGraph()
    graph.add_component(Component("host-kernel", ComponentKind.HOST_KERNEL))
    graph.add_component(Component("nic", ComponentKind.NIC))
    graph.add_component(Component("controller", ComponentKind.CONTROLLER))
    # The host PF driver talks to the NIC from the kernel; the NIC
    # itself is trusted hardware (not an attack stepping stone).
    graph.connect("host-kernel", "nic", Boundary.TRUSTED_HW)
    graph.connect("controller", "host-kernel", Boundary.USER_KERNEL)

    for t in range(spec.num_tenants):
        graph.add_component(Component(f"tenant{t}", ComponentKind.TENANT_VM,
                                      tenant_id=t))

    if not spec.level.is_mts:
        # Baseline: one vswitch inside the host (kernel datapath) or in
        # host user space (Level-3), directly reachable from every tenant
        # over virtio.
        vswitch = graph.add_component(Component("vswitch0", ComponentKind.VSWITCH))
        boundary = (Boundary.USER_KERNEL if spec.user_space else Boundary.NONE)
        graph.connect(vswitch.name, "host-kernel", boundary)
        for t in range(spec.num_tenants):
            graph.connect(f"tenant{t}", vswitch.name, Boundary.VM_ISOLATION)
        return graph

    from repro.core.spec import CompartmentKind
    containerized = spec.compartment_kind is CompartmentKind.CONTAINER
    compartment_boundary = (Boundary.CONTAINER_ISOLATION if containerized
                            else Boundary.VM_ISOLATION)
    for k in range(spec.num_compartments):
        vm = graph.add_component(Component(f"vsw-vm{k}", ComponentKind.VSWITCH_VM))
        vswitch = graph.add_component(Component(f"vswitch{k}", ComponentKind.VSWITCH))
        # The vswitch process inside its compartment: Level-3 adds the
        # user/kernel split on top of the compartment boundary.
        graph.connect(vswitch.name,
                      vm.name,
                      Boundary.USER_KERNEL if spec.user_space else Boundary.NONE)
        # The compartment sits behind the hypervisor (VMs) or the
        # kernel's namespaces (containers) from the host's view.
        graph.connect(vm.name, "host-kernel", compartment_boundary)
        # All its traffic is hardware-mediated through the trusted NIC.
        graph.connect(vswitch.name, "nic", Boundary.TRUSTED_HW)
        for t in spec.tenants_of_compartment(k):
            # Tenant-to-vswitch traffic crosses the NIC (hardware
            # mediation); there is no direct shared-memory channel.
            graph.connect(f"tenant{t}", vswitch.name, Boundary.HW_MEDIATION)
    return graph
