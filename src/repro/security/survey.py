"""Table 1: design characteristics of 23 virtual switches.

The dataset transcribes the paper's survey.  Field semantics:

- ``monolithic``: per-tenant logical datapaths share one switch.
- ``colocated``: the vswitch runs in the Host virtualization layer
  (False for NIC-offloaded designs and the Jin et al. prototype).
- ``kernel`` / ``user``: where packet processing happens; ``None``
  means partially / not applicable (the paper's '~').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class SurveyEntry:
    name: str
    year: int
    emphasis: str
    monolithic: bool
    colocated: bool
    kernel: Optional[bool]
    user: Optional[bool]


SURVEY: List[SurveyEntry] = [
    SurveyEntry("OvS", 2009, "Flexibility", True, True, True, None),
    SurveyEntry("Cisco NexusV", 2009, "Flexibility", True, True, True, False),
    SurveyEntry("VMware vSwitch", 2009, "Centralized control", True, True, True, False),
    SurveyEntry("Vale", 2012, "Performance", True, True, True, False),
    SurveyEntry("Research prototype (Jin et al.)", 2012, "Isolation", True, False, None, None),
    SurveyEntry("Hyper-Switch", 2013, "Performance", True, True, True, None),
    SurveyEntry("MS HyperV-Switch", 2013, "Centralized control", True, True, True, False),
    SurveyEntry("NetVM", 2014, "Performance, NFV", True, True, False, None),
    SurveyEntry("sv3", 2014, "Security", False, True, False, None),
    SurveyEntry("fd.io", 2015, "Performance", True, True, False, None),
    SurveyEntry("mSwitch", 2015, "Performance", True, True, None, False),
    SurveyEntry("BESS", 2015, "Programmability, NFV", True, True, False, None),
    SurveyEntry("PISCES", 2016, "Programmability", True, None, None, None),
    SurveyEntry("OvS with DPDK", 2016, "Performance", True, True, False, None),
    SurveyEntry("ESwitch", 2016, "Performance", True, None, False, None),
    SurveyEntry("MS VFP", 2017, "Performance, flexibility", True, True, None, False),
    SurveyEntry("Mellanox BlueField", 2017, "CPU offload", True, False, None, None),
    SurveyEntry("Liquid IO", 2017, "CPU offload", True, False, True, None),
    SurveyEntry("Stingray", 2017, "CPU offload", True, False, None, None),
    SurveyEntry("GPU-based OvS", 2017, "Acceleration", True, True, True, None),
    SurveyEntry("MS AccelNet", 2018, "Performance, flexibility", True, None, None, False),
    SurveyEntry("Google Andromeda", 2018, "Flexibility and performance", True, None, False, None),
    SurveyEntry("MTS (this paper)", 2019, "Isolation", False, False, None, True),
]


def survey_statistics(entries: Optional[List[SurveyEntry]] = None) -> Dict[str, float]:
    """The headline fractions quoted in section 2.1 (surveyed designs
    only -- MTS itself excluded)."""
    if entries is None:
        entries = [e for e in SURVEY if "MTS" not in e.name]
    total = len(entries)
    monolithic = sum(1 for e in entries if e.monolithic)
    colocated = sum(1 for e in entries if e.colocated)
    kernel_touching = sum(1 for e in entries if e.kernel or e.kernel is None)
    return {
        "total": total,
        "monolithic_fraction": monolithic / total,
        "colocated_fraction": colocated / total,
        "kernel_involved_fraction": kernel_touching / total,
    }


def render_table(entries: Optional[List[SurveyEntry]] = None) -> str:
    """Fixed-width rendition of Table 1."""
    if entries is None:
        entries = SURVEY

    def mark(value: Optional[bool]) -> str:
        if value is None:
            return "~"
        return "y" if value else "n"

    width = max(len(e.name) for e in entries)
    lines = [
        f"{'Name':<{width}}  Year  {'Emphasis':<28}  Mono  Coloc  Kern  User",
    ]
    lines.append("-" * len(lines[0]))
    for e in entries:
        lines.append(
            f"{e.name:<{width}}  {e.year}  {e.emphasis:<28}  "
            f"{mark(e.monolithic):>4}  {mark(e.colocated):>5}  "
            f"{mark(e.kernel):>4}  {mark(e.user):>4}"
        )
    return "\n".join(lines)
