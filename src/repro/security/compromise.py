"""The threat model of section 2.2, executed against a deployment.

The attacker rents (or compromises) a tenant VM and can send arbitrary
packets from it; the assumed worst case is that she fully controls the
vswitch her VM is attached to (as demonstrated against OvS in the
papers the design cites).  The defender wants tenant isolation to
survive even then.

:func:`assess_compromise` computes, on the component graph:

- ``exploits_to_host``: minimum independent boundary failures between
  the attacker VM and the host kernel;
- ``vswitch_blast_radius``: tenants whose virtual networks the attacker
  controls once the vswitch serving her is compromised (the least-
  common-mechanism metric: everyone for Baseline/Level-1, only the
  compartment's tenants for Level-2);
- ``exploits_to_tenant``: minimum failures to reach another tenant's VM;
- ``meets_extra_layer_rule``: Google's >= 2 distinct boundaries rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.security.components import ComponentKind, SystemGraph, component_graph


@dataclass
class CompromiseAssessment:
    attacker_tenant: int
    exploits_to_host: Optional[int]
    exploits_to_other_tenants: Dict[int, Optional[int]]
    vswitch_blast_radius: List[int]

    @property
    def meets_extra_layer_rule(self) -> bool:
        """Google's 'extra security layer': >= 2 independent boundaries
        between untrusted tenant code and the trusted host."""
        return self.exploits_to_host is not None and self.exploits_to_host >= 2

    @property
    def isolates_other_tenants_from_vswitch(self) -> bool:
        """True if compromising the attacker's vswitch does not, by
        itself, expose any other tenant's virtual network."""
        return self.vswitch_blast_radius == [self.attacker_tenant]


def _vswitch_serving(graph: SystemGraph, tenant: int) -> str:
    for neighbor, _ in graph.neighbors(f"tenant{tenant}"):
        if graph.component(neighbor).kind == ComponentKind.VSWITCH:
            return neighbor
    raise ValueError(f"tenant{tenant} has no vswitch attached")


def assess_compromise(deployment: Deployment,
                      attacker_tenant: int = 0) -> CompromiseAssessment:
    """Run the section 2.2 threat model for one attacker tenant."""
    spec = deployment.spec
    if not 0 <= attacker_tenant < spec.num_tenants:
        raise ValueError(f"no such tenant: {attacker_tenant}")
    graph = component_graph(deployment)
    attacker = f"tenant{attacker_tenant}"

    exploits_to_host = graph.min_exploits(attacker, "host-kernel")

    vswitch = _vswitch_serving(graph, attacker_tenant)
    blast = sorted(
        component.tenant_id
        for neighbor, _ in graph.neighbors(vswitch)
        for component in [graph.component(neighbor)]
        if component.kind == ComponentKind.TENANT_VM
        and component.tenant_id is not None
    )

    others: Dict[int, Optional[int]] = {}
    for t in range(spec.num_tenants):
        if t == attacker_tenant:
            continue
        others[t] = graph.min_exploits(attacker, f"tenant{t}")

    return CompromiseAssessment(
        attacker_tenant=attacker_tenant,
        exploits_to_host=exploits_to_host,
        exploits_to_other_tenants=others,
        vswitch_blast_radius=blast,
    )
