"""Scoring deployments against the secure-design principles (Fig. 1).

Each of the four Saltzer-Schroeder-derived principles the paper builds
on is evaluated *structurally* on a built deployment -- not on its spec
-- so a deployment that forgot its NIC filters or spoof checks scores
worse than its label promises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deployment import Deployment
from repro.core.levels import boundaries_to_host


@dataclass(frozen=True)
class PrincipleScores:
    """Per-principle outcomes plus the paper's security-level label."""

    label: str
    #: Least privilege: the vswitch does NOT run inside the host's
    #: protection domain with full privilege.
    least_privilege: bool
    #: Complete mediation: every tenant dataplane channel passes the
    #: NIC's reference monitor (spoof check enabled + wildcard filters).
    complete_mediation: bool
    #: Number of independent boundaries between tenant code and the host.
    security_boundaries: int
    #: Least common mechanism: tenants sharing one vswitch (lower=better;
    #: 1 means fully per-tenant compartments).
    max_tenants_per_vswitch: int

    @property
    def meets_extra_layer_rule(self) -> bool:
        return self.security_boundaries >= 2

    def row(self) -> str:
        return (
            f"{self.label:<16} least_priv={'yes' if self.least_privilege else 'NO':<3} "
            f"mediation={'yes' if self.complete_mediation else 'NO':<3} "
            f"boundaries={self.security_boundaries} "
            f"tenants/vswitch={self.max_tenants_per_vswitch}"
        )


def score_principles(deployment: Deployment) -> PrincipleScores:
    spec = deployment.spec

    least_privilege = spec.level.is_mts

    if spec.level.is_mts:
        tenant_vfs = [vf for vf in deployment.tenant_vf.values()]
        all_spoof_checked = all(vf.spoof_check for vf in tenant_vfs)
        has_filters = len(deployment.server.nic.filters) > 0
        complete_mediation = bool(tenant_vfs) and all_spoof_checked and has_filters
    else:
        # Tenant virtio traffic lands directly in the host vswitch; no
        # trusted intermediary validates it.
        complete_mediation = False

    if spec.level.is_mts:
        max_share = max(
            len(spec.tenants_of_compartment(k))
            for k in range(spec.num_compartments)
        )
    else:
        max_share = spec.num_tenants

    return PrincipleScores(
        label=spec.label,
        least_privilege=least_privilege,
        complete_mediation=complete_mediation,
        security_boundaries=boundaries_to_host(spec.level, spec.user_space),
        max_tenants_per_vswitch=max_share,
    )
