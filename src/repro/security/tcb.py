"""Trusted-computing-base accounting.

Section 2.1 argues that co-locating a monolithic vswitch with the host
inflates the server's TCB ("a vswitch is a complex piece of software,
consisting of tens of thousands of lines of code") and that sharing the
SR-IOV VF driver + the NIC's L2 function is "considerably simpler than
including the NIC driver and the entire network virtualization stack
(Layer 2-7) in the TCB".

We quantify that with order-of-magnitude component sizes (kLoC,
rounded, from the projects' own repositories circa the paper's
time frame) and compute two metrics per deployment:

- ``host_exposed_kloc``: code an attacker's packets reach *inside the
  host's protection domain*;
- ``shared_between_tenants_kloc``: code simultaneously in more than one
  tenant's trust path (the least-common-mechanism surface).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deployment import Deployment

#: Order-of-magnitude component sizes in kLoC.
KLOC = {
    "ovs-core": 250.0,          # OVS userspace + ofproto + vswitchd
    "ovs-kernel-datapath": 30.0,
    "dpdk-pmd": 80.0,           # DPDK EAL + mlx5 PMD footprint
    "vhost-virtio": 25.0,       # vhost worker + virtio rings in the host
    "sriov-vf-driver": 15.0,    # guest VF driver
    "sriov-pf-driver": 40.0,    # host PF driver + NIC firmware interface
    "linux-netstack": 400.0,    # host kernel networking the vswitch touches
    "nic-l2-function": 10.0,    # VEB/VST logic in NIC silicon/firmware
}


@dataclass(frozen=True)
class TcbReport:
    label: str
    #: kLoC reachable by tenant packets inside the host domain.
    host_exposed_kloc: float
    #: kLoC in more than one tenant's trust path.
    shared_between_tenants_kloc: float

    def row(self) -> str:
        return (f"{self.label:<16} host-exposed={self.host_exposed_kloc:7.0f} kLoC  "
                f"tenant-shared={self.shared_between_tenants_kloc:7.0f} kLoC")


def tcb_report(deployment: Deployment) -> TcbReport:
    spec = deployment.spec
    if not spec.level.is_mts:
        # The vswitch, its datapath, and the vhost workers all live in
        # the host and parse tenant bytes there.
        host = KLOC["ovs-core"] + KLOC["vhost-virtio"] + KLOC["linux-netstack"]
        host += (KLOC["dpdk-pmd"] if spec.user_space
                 else KLOC["ovs-kernel-datapath"])
        shared = host  # one vswitch, all tenants
        return TcbReport(spec.label, host, shared)

    # MTS: the host-exposed surface shrinks to the PF driver and the
    # NIC's L2 function; the vswitch stack moved into unprivileged VMs.
    host = KLOC["sriov-pf-driver"] + KLOC["nic-l2-function"]

    # Between tenants, the shared mechanism is the NIC (always) plus the
    # vswitch VM stack for tenants co-hosted on one compartment.
    shared = KLOC["sriov-vf-driver"] + KLOC["nic-l2-function"]
    max_cohosted = max(
        len(spec.tenants_of_compartment(k))
        for k in range(spec.num_compartments)
    )
    if max_cohosted > 1:
        shared += KLOC["ovs-core"]
        shared += KLOC["dpdk-pmd"] if spec.user_space else KLOC["ovs-kernel-datapath"]
    return TcbReport(spec.label, host, shared)
