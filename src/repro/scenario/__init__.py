"""Declarative scenario execution: spec -> engine -> result store.

The scenario subsystem separates *what to run* from *how it executes*:

- :mod:`repro.scenario.spec` -- frozen :class:`ScenarioSpec` with a
  stable SHA-256 content hash and JSON round-trip, plus the matching
  :class:`ScenarioResult`;
- :mod:`repro.scenario.registry` -- workload name -> measurement
  function, resolved lazily by import path;
- :mod:`repro.scenario.engine` -- the :class:`Engine` plus the
  :class:`SequentialBackend` / :class:`ProcessPoolBackend` pair;
- :mod:`repro.scenario.store` -- the content-addressed
  :class:`ResultStore` (and the ``--no-cache`` :class:`NullStore`);
- :mod:`repro.scenario.sweep` -- cartesian grids over spec fields.

Every experiment in :mod:`repro.experiments` is now a pure function
from scenario lists to tables; ``repro sweep`` runs arbitrary grids in
parallel with caching.
"""

from repro.scenario.engine import (
    Engine,
    ProcessPoolBackend,
    SequentialBackend,
    default_worker_count,
    fold_metrics,
    run_scenario,
)
from repro.scenario.registry import WORKLOADS, preload, register, resolve
from repro.scenario.spec import (
    DEFAULT_CALIBRATION_REF,
    ScenarioResult,
    ScenarioSpec,
    calibration_ref,
    canonical_json,
)
from repro.scenario.store import DEFAULT_STORE_DIR, NullStore, ResultStore
from repro.scenario.sweep import (
    SweepGrid,
    build_grid,
    sweep_table,
    write_jsonl,
)

__all__ = [
    "Engine",
    "ProcessPoolBackend",
    "SequentialBackend",
    "default_worker_count",
    "fold_metrics",
    "run_scenario",
    "WORKLOADS",
    "preload",
    "register",
    "resolve",
    "DEFAULT_CALIBRATION_REF",
    "ScenarioResult",
    "ScenarioSpec",
    "calibration_ref",
    "canonical_json",
    "DEFAULT_STORE_DIR",
    "NullStore",
    "ResultStore",
    "SweepGrid",
    "build_grid",
    "sweep_table",
    "write_jsonl",
]
