"""The workload registry: scenario names -> measurement functions.

Workloads are registered as ``"module:function"`` import paths and
resolved lazily.  Two reasons this is a string table rather than direct
imports:

- **no import cycles**: experiment modules import the scenario package
  (for :class:`~repro.scenario.spec.ScenarioSpec`), while the engine
  dispatches *into* experiment modules -- lazy resolution breaks the
  loop;
- **process-pool friendliness**: worker processes receive only the
  workload name and import the measurement code themselves, so the
  parent never pickles functions.

A measurement function has the signature::

    def measure_scenario(spec: ScenarioSpec,
                         calibration: Calibration = DEFAULT_CALIBRATION
                         ) -> Dict[str, float]

It must be **pure up to its spec**: same spec (and calibration), same
returned values, regardless of process, ordering, or what ran before
it.  That contract is what makes results cacheable and backends
interchangeable.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.errors import ValidationError

#: Built-in workloads.  Third parties extend via :func:`register`.
WORKLOADS: Dict[str, str] = {
    "fig5.throughput": "repro.experiments.fig5_throughput:measure_scenario",
    "fig5.latency": "repro.experiments.fig5_latency:measure_scenario",
    "fig5.resources": "repro.experiments.fig5_resources:measure_scenario",
    "fig6.iperf": "repro.experiments.fig6_iperf:measure_scenario",
    "fig6.apache": "repro.experiments.fig6_apache:measure_scenario",
    "fig6.memcached": "repro.experiments.fig6_memcached:measure_scenario",
    "ext.noisy-neighbor":
        "repro.experiments.noisy_neighbor:measure_scenario",
    "ext.policy-injection":
        "repro.experiments.policy_injection:measure_scenario",
    "ext.latency-breakdown":
        "repro.experiments.latency_breakdown:measure_scenario",
    "ext.fault-isolation":
        "repro.experiments.fault_isolation:measure_scenario",
    "ext.deployment-cost":
        "repro.experiments.deployment_cost:measure_scenario",
    "ext.chaos": "repro.faults.campaign:measure_scenario",
    "fabric.placement": "repro.fabric.workload:measure_placement",
    "fabric.hybrid": "repro.fabric.workload:measure_scenario",
    "controlplane.churn": "repro.controlplane.workload:measure_scenario",
    # Pool-backend self-tests: lethal only inside a worker process.
    "chaos.crashy": "repro.faults.diagnostics:measure_crashy",
    "chaos.sleepy": "repro.faults.diagnostics:measure_sleepy",
}

_RESOLVED: Dict[str, Callable] = {}


def register(name: str, target: str) -> None:
    """Add (or override) a workload as a ``"module:function"`` path."""
    if ":" not in target:
        raise ValidationError(
            f"workload target must be 'module:function', got {target!r}")
    WORKLOADS[name] = target
    _RESOLVED.pop(name, None)


def preload(names=None) -> int:
    """Eagerly resolve workloads (all registered ones by default).

    Pool workers call this from their initializer so the simulation
    stack -- experiment modules, the DES kernel, the perf models -- is
    imported **once per worker process**, not lazily inside the first
    scenario of every batch.  Unknown names are skipped (a registry
    extension made after the pool forked resolves lazily instead).
    Returns the number of workloads resolved.
    """
    count = 0
    for name in (WORKLOADS if names is None else names):
        if name in WORKLOADS:
            resolve(name)
            count += 1
    return count


def resolve(name: str) -> Callable:
    """Import and return the measurement function for ``name``."""
    fn = _RESOLVED.get(name)
    if fn is not None:
        return fn
    target = WORKLOADS.get(name)
    if target is None:
        raise ValidationError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    module_name, _, attr = target.partition(":")
    fn = getattr(importlib.import_module(module_name), attr)
    _RESOLVED[name] = fn
    return fn
