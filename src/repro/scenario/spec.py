"""Frozen, content-addressed scenario specifications.

A :class:`ScenarioSpec` is the unit of work of the scenario engine: it
names *what* to run (a workload from the registry), *on what* (a
:class:`~repro.core.spec.DeploymentSpec` plus traffic scenario), and
*how* (duration, warmup, master seed, free-form workload parameters,
and the calibration the numbers are valid against).  Two properties
make it the backbone of caching and parallel execution:

- **JSON round-trip**: ``from_dict(to_dict(s)) == s``, so specs cross
  process boundaries and live in result files unchanged;
- **stable content hash**: :meth:`content_hash` is the SHA-256 of the
  spec's canonical JSON (sorted keys, no whitespace), *excluding* the
  cosmetic presentation fields (``label``, ``eval_mode``) and
  *including* the calibration ref -- so the hash is exactly the
  result-cache key: same hash, same numbers.

:class:`ScenarioResult` is the matching output record: the measured
values (a flat name -> float map), the obs metrics harvested during the
run, and bookkeeping (wall-clock elapsed, cache provenance) that is
deliberately excluded from :meth:`ScenarioResult.result_hash`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ValidationError
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION


def _jsonable(obj: Any) -> Any:
    """Recursively reduce dataclasses/enums/tuples to JSON-safe values
    (dict keys become strings, enum keys by their value)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, enum.Enum):
        return _jsonable(obj.value)
    if isinstance(obj, dict):
        return {str(_jsonable(k)): _jsonable(v)
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def canonical_json(data: Any) -> str:
    """Whitespace-free, key-sorted JSON -- the hashing wire format."""
    return json.dumps(_jsonable(data), sort_keys=True,
                      separators=(",", ":"))


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def calibration_ref(calibration: Calibration) -> str:
    """A short content ref of a calibration: hash of every constant.

    Any change to any empirical constant changes the ref, which changes
    every scenario hash built against it -- stale cached results can
    never be served against fresh constants.

    The ref is memoized on the calibration instance (an attribute, not
    a dataclass field, so it never leaks into serialization and
    ``dataclasses.replace`` copies never inherit it): the engine
    re-derives it once per scenario, and serializing ~40 constants per
    run is pure overhead.  Mutating a constant on a live calibration
    object after its ref was taken is unsupported -- build a new object
    (ablations already do).
    """
    cached = getattr(calibration, "_repro_cal_ref", None)
    if cached is None:
        cached = sha256_hex(canonical_json(calibration))[:16]
        try:
            object.__setattr__(calibration, "_repro_cal_ref", cached)
        except (AttributeError, TypeError):
            pass  # slotted/frozen stand-ins just recompute
    return cached


#: The ref every spec gets unless an ablation supplies its own.
DEFAULT_CALIBRATION_REF = calibration_ref(DEFAULT_CALIBRATION)

#: Parameter values allowed in ``ScenarioSpec.params``.
ParamValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class ScenarioSpec:
    """One self-contained, executable measurement scenario."""

    #: Registry name of the measurement ("fig5.latency", ...).
    workload: str
    #: The deployment under test.
    deployment: DeploymentSpec
    #: Traffic pattern (Fig. 4's p2p / p2v / v2v).
    traffic: TrafficScenario = TrafficScenario.P2V
    #: DES send window in simulated seconds (0 for analytic workloads).
    duration: float = 0.0
    #: Measurement-window start inside the send window.
    warmup: float = 0.0
    #: Master seed for this scenario's RNG streams.
    seed: int = 0
    #: Presentation only: which figure row this point belongs to.
    #: Excluded from the content hash.
    eval_mode: str = ""
    #: Presentation only: the figure's bar/curve label ("L2(4)", ...).
    #: Excluded from the content hash.
    label: str = ""
    #: Free-form workload parameters, stored sorted for hash stability.
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    #: Ref of the calibration the numbers are valid against.
    calibration_ref: str = DEFAULT_CALIBRATION_REF
    #: Optional fault campaign injected during the run.  ``None`` (the
    #: common case) serializes to *nothing* so pre-chaos spec hashes --
    #: and every cached result keyed by them -- stay valid.
    faults: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(params.items())
        object.__setattr__(self, "params", tuple(sorted(params)))
        if isinstance(self.faults, Mapping):
            from repro.faults.plan import FaultPlan
            object.__setattr__(self, "faults",
                               FaultPlan.from_dict(self.faults))
        self.deployment.validate_scenario(self.traffic)

    # -- accessors --------------------------------------------------------

    def param(self, name: str, default: Optional[ParamValue] = None
              ) -> Optional[ParamValue]:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def display_label(self) -> str:
        return self.label or f"{self.deployment.label}/{self.traffic.value}"

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "workload": self.workload,
            "deployment": self.deployment.to_dict(),
            "traffic": self.traffic.value,
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "eval_mode": self.eval_mode,
            "label": self.label,
            "params": dict(self.params),
            "calibration_ref": self.calibration_ref,
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {"workload", "deployment", "traffic", "duration", "warmup",
                 "seed", "eval_mode", "label", "params", "calibration_ref",
                 "faults"}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown scenario fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["deployment"] = DeploymentSpec.from_dict(kwargs["deployment"])
        kwargs["traffic"] = TrafficScenario(kwargs["traffic"])
        if "params" in kwargs:
            kwargs["params"] = tuple(sorted(kwargs["params"].items()))
        if kwargs.get("faults") is not None:
            from repro.faults.plan import FaultPlan
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        return cls(**kwargs)

    # -- hashing ----------------------------------------------------------

    def content_dict(self) -> dict:
        """The hashed subset of :meth:`to_dict`: everything that can
        change the measured numbers.  ``label`` and ``eval_mode`` are
        presentation-only and excluded, so e.g. the Apache throughput
        and response-time rows share one cached point."""
        data = self.to_dict()
        del data["label"]
        del data["eval_mode"]
        return data

    def content_hash(self) -> str:
        """The stable SHA-256 identity -- also the result-cache key.

        Memoized on first call: the spec is frozen, so the hash can
        never go stale, while the engine/store/result path asks for it
        repeatedly (dedup key, cache probe, cache write, result record).
        The cache lives in ``__dict__`` rather than a dataclass field,
        so equality, ``repr`` and serialization are untouched -- and it
        rides along in pickles, sparing pool workers the recompute.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = sha256_hex(canonical_json(self.content_dict()))
            object.__setattr__(self, "_content_hash", cached)
        return cached


@dataclass
class ScenarioResult:
    """The measured output of one scenario run."""

    #: ``content_hash()`` of the spec that produced this result.
    spec_hash: str
    workload: str
    label: str
    traffic: str
    #: The measurement: flat name -> value.
    values: Dict[str, float] = field(default_factory=dict)
    #: Obs counter deltas harvested during the run (cache hit/lookup
    #: totals, drops); shipped back from worker processes and folded
    #: into the parent registry.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: True when served from the result store (or deduplicated within a
    #: run) instead of executed.  Not part of the result hash.
    cached: bool = False
    #: Wall-clock seconds the measurement took.  Not part of the hash.
    elapsed: float = 0.0
    #: Chaos event log (inject/detect/recover dicts) when the spec
    #: carried a fault plan; empty otherwise.  Deterministic given the
    #: spec, but kept out of the result hash like the other provenance.
    events: list = field(default_factory=list)
    #: Windowed usage records + billing summary dicts when the spec
    #: asked for metering (``("metering", True)`` param); empty
    #: otherwise.  Same treatment as ``events``: travels through
    #: workers and the result store, stays out of the result hash.
    usage: list = field(default_factory=list)

    def result_hash(self) -> str:
        """Hash of the *measured content* only: identical numbers from
        any backend, cached or fresh, hash identically."""
        return sha256_hex(canonical_json(
            {"spec": self.spec_hash, "values": self.values}))

    def to_dict(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "workload": self.workload,
            "label": self.label,
            "traffic": self.traffic,
            "values": dict(self.values),
            "metrics": dict(self.metrics),
            "cached": self.cached,
            "elapsed": self.elapsed,
            "events": [dict(e) for e in self.events],
            "usage": [dict(u) for u in self.usage],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        return cls(**data)

    def relabeled(self, spec: ScenarioSpec, cached: bool) -> "ScenarioResult":
        """A copy presented under ``spec``'s labels (cache hits may have
        been recorded under a different figure row's label)."""
        return dataclasses.replace(
            self, label=spec.display_label, traffic=spec.traffic.value,
            cached=cached, metrics=dict(self.metrics),
            values=dict(self.values), events=[dict(e) for e in self.events],
            usage=[dict(u) for u in self.usage])
