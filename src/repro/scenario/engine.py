"""The scenario engine: pluggable execution over frozen specs.

Layering::

    ScenarioSpec list --> Engine --> backend --> measurement function
                            |
                            +--> ResultStore (content-addressed cache)

The **engine** owns policy: result-cache lookups, within-run
deduplication of identical specs, and order preservation (results come
back in input order no matter how the backend schedules).  The
**backend** owns mechanics only; two are provided:

- :class:`SequentialBackend` -- in-process, in-order; the default, and
  the reference implementation of the contract;
- :class:`ProcessPoolBackend` -- a
  :class:`concurrent.futures.ProcessPoolExecutor` fan-out; specs travel
  as JSON dicts, results (plus the obs metrics harvested in the
  worker) come back as dicts and the metric deltas are folded into the
  parent registry.

Backend contract: given the same spec list, every backend must return
value-identical results in the same order.  Backends introduce **no
randomness** -- every seed is already pinned inside the specs (sweep
grids derive per-scenario seeds from the master seed via
:meth:`RngStreams.fork <repro.sim.rng.RngStreams.fork>` at
grid-construction time), which is what makes sequential and parallel
runs bit-identical.
"""

from __future__ import annotations

import os
import re
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ScenarioTimeoutError, ValidationError
from repro.faults import runtime as faults_runtime
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.registry import resolve
from repro.scenario.spec import (
    ScenarioResult,
    ScenarioSpec,
    calibration_ref,
)

#: Counter families shipped from workers and folded into the parent
#: registry (the obs cache/drop counters harvested per harness run,
#: plus the chaos layer's fault-lifecycle counters).
SHIPPED_COUNTERS = (
    "cache_hits_total",
    "cache_lookups_total",
    "cache_evictions_total",
    "plan_invalidations_total",
    "drops_total",
    "faults_injected_total",
    "fault_detections_total",
    "fault_recoveries_total",
    "fault_restart_attempts_total",
    "fault_giveups_total",
    "fault_circuit_open_total",
    "fault_noop_operations_total",
)

_KEY_RE = re.compile(r"^(?P<name>\w+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def run_scenario(spec: ScenarioSpec,
                 calibration: Calibration = DEFAULT_CALIBRATION
                 ) -> ScenarioResult:
    """Execute one scenario in-process and capture its obs deltas."""
    if spec.calibration_ref != calibration_ref(calibration):
        raise ValidationError(
            f"scenario {spec.content_hash()[:12]} was built against "
            f"calibration {spec.calibration_ref}, engine runs "
            f"{calibration_ref(calibration)}")
    fn = resolve(spec.workload)
    before = obs.REGISTRY.snapshot()
    start = time.perf_counter()
    ctx = faults_runtime.activate(spec.faults, spec.seed)
    try:
        values = fn(spec, calibration)
        events = faults_runtime.drain()
    finally:
        faults_runtime.deactivate(ctx)
    elapsed = time.perf_counter() - start
    after = obs.REGISTRY.snapshot()
    metrics = {}
    for key, value in after.items():
        if key.startswith(SHIPPED_COUNTERS):
            delta = value - before.get(key, 0.0)
            if delta:
                metrics[key] = delta
    return ScenarioResult(
        spec_hash=spec.content_hash(),
        workload=spec.workload,
        label=spec.display_label,
        traffic=spec.traffic.value,
        # Sorted so fresh, pooled and cached results (JSON round-trips
        # sort keys) agree on column order everywhere downstream.
        values=dict(sorted(values.items())),
        metrics=metrics,
        elapsed=elapsed,
        events=events,
    )


def fold_metrics(registry, metrics: Dict[str, float]) -> None:
    """Fold shipped counter deltas (flat ``name{k="v"}`` keys) into a
    registry, so parallel runs report cache efficacy like local ones."""
    for key, delta in metrics.items():
        if delta <= 0:
            continue
        match = _KEY_RE.match(key)
        if not match or not match.group("name").startswith(SHIPPED_COUNTERS):
            continue
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        family = registry.counter(match.group("name"),
                                 labels=tuple(labels))
        family.labels(**labels).inc(delta)


class SequentialBackend:
    """In-process, in-order execution (the reference backend)."""

    name = "sequential"

    def run(self, specs: Sequence[ScenarioSpec],
            calibration: Calibration = DEFAULT_CALIBRATION
            ) -> List[ScenarioResult]:
        return [run_scenario(spec, calibration) for spec in specs]


def _pool_worker(spec_dict: dict, calibration: Calibration) -> dict:
    """Top-level so the pool can import it; specs travel as dicts."""
    spec = ScenarioSpec.from_dict(spec_dict)
    return run_scenario(spec, calibration).to_dict()


class ProcessPoolBackend:
    """Parallel execution across worker processes.

    Results return in input order and are value-identical to the
    sequential backend's because the specs pin every seed.  Worker obs
    metrics ship back inside the results and are folded into this
    process's registry.

    Crash tolerance: a worker dying (OOM kill, segfault) breaks a
    ``ProcessPoolExecutor`` and poisons every future still pending, but
    results collected before the break are intact -- so instead of
    aborting the sweep, the backend reruns the poisoned specs
    sequentially in this process.  Breakdowns and retried specs are
    counted (``scenario_pool_breaks_total`` /
    ``scenario_pool_retries_total``) so a flaky fleet is observable.

    A worker that *hangs* is different: silently rerunning it would
    hang the parent too, so ``timeout`` (wall-clock seconds per
    scenario result) kills the pool and raises
    :class:`~repro.errors.ScenarioTimeoutError` instead.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None,
                 timeout: Optional[float] = None) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1
        self.timeout = timeout

    def run(self, specs: Sequence[ScenarioSpec],
            calibration: Calibration = DEFAULT_CALIBRATION
            ) -> List[ScenarioResult]:
        if not specs:
            return []
        workers = min(self.max_workers, len(specs))
        if workers <= 1:
            return SequentialBackend().run(specs, calibration)
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        poisoned: List[int] = []
        broke = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [pool.submit(_pool_worker, spec.to_dict(), calibration)
                       for spec in specs]
            for i, future in enumerate(futures):
                try:
                    data = future.result(timeout=self.timeout)
                except FuturesTimeoutError:
                    # The worker is wedged; shutdown() would join it
                    # forever.  Kill the whole pool, then fail loudly.
                    for proc in list(pool._processes.values()):
                        proc.terminate()
                    raise ScenarioTimeoutError(
                        f"scenario {specs[i].content_hash()[:12]} "
                        f"({specs[i].display_label}) produced no result "
                        f"within {self.timeout}s")
                except BrokenExecutor:
                    broke = True
                    poisoned.append(i)
                    continue
                result = ScenarioResult.from_dict(data)
                fold_metrics(obs.REGISTRY, result.metrics)
                results[i] = result
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        if broke:
            obs.REGISTRY.counter(
                "scenario_pool_breaks_total",
                "process-pool breakdowns survived by sequential fallback",
            ).inc()
            retries = obs.REGISTRY.counter(
                "scenario_pool_retries_total",
                "scenarios rerun in-process after a pool breakdown")
            for i in poisoned:
                retries.inc()
                # In-process rerun hits the parent registry directly;
                # no metrics fold (that would double-count).
                results[i] = run_scenario(specs[i], calibration)
        return results


class Engine:
    """Cache-aware scenario execution with a pluggable backend."""

    def __init__(self, backend=None, store=None,
                 calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.backend = backend or SequentialBackend()
        self.store = store  # None = no caching
        self.calibration = calibration

    def run(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run ``specs``, serving store hits and deduplicating identical
        specs within the batch; results in input order."""
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        pending: List[ScenarioSpec] = []
        pending_idx: List[int] = []
        first_of: Dict[str, int] = {}
        dupes: List[tuple] = []  # (index, first-index)

        for i, spec in enumerate(specs):
            key = spec.content_hash()
            if key in first_of:
                dupes.append((i, first_of[key]))
                continue
            first_of[key] = i
            hit = self.store.get(spec) if self.store is not None else None
            if hit is not None:
                results[i] = hit.relabeled(spec, cached=True)
            else:
                pending.append(spec)
                pending_idx.append(i)

        fresh = self.backend.run(pending, self.calibration)
        for spec, i, result in zip(pending, pending_idx, fresh):
            results[i] = result
            if self.store is not None:
                self.store.put(spec, result)

        for i, j in dupes:
            results[i] = results[j].relabeled(specs[i], cached=True)
        return results

    def run_one(self, spec: ScenarioSpec) -> ScenarioResult:
        return self.run([spec])[0]
