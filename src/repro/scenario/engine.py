"""The scenario engine: pluggable execution over frozen specs.

Layering::

    ScenarioSpec list --> Engine --> backend --> measurement function
                            |
                            +--> ResultStore (content-addressed cache)

The **engine** owns policy: result-cache lookups, within-run
deduplication of identical specs, and order preservation (results come
back in input order no matter how the backend schedules).  The
**backend** owns mechanics only; two are provided:

- :class:`SequentialBackend` -- in-process, in-order; the default, and
  the reference implementation of the contract;
- :class:`ProcessPoolBackend` -- a **persistent warm-worker pool**
  around :class:`concurrent.futures.ProcessPoolExecutor`: workers are
  created once per backend and reused across ``run()`` calls, an
  initializer pre-imports the simulation stack and pre-binds the
  calibration, and specs travel in pickled batches (adaptive chunk
  size) rather than one future per scenario.  Results come back as
  pickled batches too; each batch's obs metric deltas are folded into
  the parent registry once.

Backend contract: given the same spec list, every backend must return
value-identical results in the same order.  Backends introduce **no
randomness** -- every seed is already pinned inside the specs (sweep
grids derive per-scenario seeds from the master seed via
:meth:`RngStreams.fork <repro.sim.rng.RngStreams.fork>` at
grid-construction time), which is what makes sequential and parallel
runs bit-identical.
"""

from __future__ import annotations

import math
import os
import re
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.billing import runtime as billing_runtime
from repro.errors import ScenarioTimeoutError, ValidationError
from repro.faults import runtime as faults_runtime
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.registry import resolve
from repro.scenario.spec import (
    ScenarioResult,
    ScenarioSpec,
    calibration_ref,
)

#: Counter families shipped from workers and folded into the parent
#: registry (the obs cache/drop counters harvested per harness run,
#: plus the chaos layer's fault-lifecycle counters).
SHIPPED_COUNTERS = (
    "cache_hits_total",
    "cache_lookups_total",
    "cache_evictions_total",
    "plan_invalidations_total",
    "drops_total",
    "faults_injected_total",
    "fault_detections_total",
    "fault_recoveries_total",
    "fault_restart_attempts_total",
    "fault_giveups_total",
    "fault_circuit_open_total",
    "fault_noop_operations_total",
    # All billing_* families (cpu/io/pcie/passes/drops/windows).
    "billing_",
    # Fabric-switch flood/forward/per-port counters (fabric workloads).
    "fabric_",
    # Control-plane lifecycle/autoscale counters (controlplane.churn).
    # Enumerated (not the bare prefix) because the controlplane family
    # also has gauges and histograms, which must not fold as counters.
    "controlplane_transitions_total",
    "controlplane_illegal_transitions_total",
    "controlplane_invariant_violations_total",
    "controlplane_arrivals_total",
    "controlplane_rejections_total",
    "controlplane_placements_total",
    "controlplane_placement_retries_total",
    "controlplane_departures_total",
    "controlplane_evictions_total",
    "controlplane_crashes_total",
    "controlplane_detections_total",
    "controlplane_repairs_total",
    "controlplane_migrations_total",
    "controlplane_migrations_completed_total",
    "controlplane_scale_events_total",
)

_KEY_RE = re.compile(r"^(?P<name>\w+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def run_scenario(spec: ScenarioSpec,
                 calibration: Calibration = DEFAULT_CALIBRATION
                 ) -> ScenarioResult:
    """Execute one scenario in-process and capture its obs deltas."""
    if spec.calibration_ref != calibration_ref(calibration):
        raise ValidationError(
            f"scenario {spec.content_hash()[:12]} was built against "
            f"calibration {spec.calibration_ref}, engine runs "
            f"{calibration_ref(calibration)}")
    fn = resolve(spec.workload)
    before = obs.REGISTRY.snapshot()
    start = time.perf_counter()
    ctx = faults_runtime.activate(spec.faults, spec.seed)
    bctx = billing_runtime.activate(
        bool(spec.param("metering", False)),
        interval=float(spec.param("metering_interval", 0.0) or 0.0),
        seed=spec.seed,
    )
    try:
        values = fn(spec, calibration)
        events = faults_runtime.drain()
        usage = billing_runtime.drain()
    finally:
        faults_runtime.deactivate(ctx)
        billing_runtime.deactivate(bctx)
    elapsed = time.perf_counter() - start
    after = obs.REGISTRY.snapshot()
    metrics = {}
    for key, value in after.items():
        if key.startswith(SHIPPED_COUNTERS):
            delta = value - before.get(key, 0.0)
            if delta:
                metrics[key] = delta
    return ScenarioResult(
        spec_hash=spec.content_hash(),
        workload=spec.workload,
        label=spec.display_label,
        traffic=spec.traffic.value,
        # Sorted so fresh, pooled and cached results (JSON round-trips
        # sort keys) agree on column order everywhere downstream.
        values=dict(sorted(values.items())),
        metrics=metrics,
        elapsed=elapsed,
        events=events,
        usage=usage,
    )


def fold_metrics(registry, metrics: Dict[str, float]) -> None:
    """Fold shipped counter deltas (flat ``name{k="v"}`` keys) into a
    registry, so parallel runs report cache efficacy like local ones."""
    for key, delta in metrics.items():
        if delta <= 0:
            continue
        match = _KEY_RE.match(key)
        if not match or not match.group("name").startswith(SHIPPED_COUNTERS):
            continue
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        family = registry.counter(match.group("name"),
                                 labels=tuple(labels))
        family.labels(**labels).inc(delta)


class SequentialBackend:
    """In-process, in-order execution (the reference backend)."""

    name = "sequential"

    def run(self, specs: Sequence[ScenarioSpec],
            calibration: Calibration = DEFAULT_CALIBRATION
            ) -> List[ScenarioResult]:
        return [run_scenario(spec, calibration) for spec in specs]


def default_worker_count() -> int:
    """Cores actually available to this process: the cgroup/affinity
    mask when the platform exposes one (CI runners routinely pin jobs
    to a subset of the machine), else ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


#: Batches submitted per worker by the adaptive chunk size: enough
#: slack for stragglers to rebalance, few enough that dispatch cost
#: amortizes across the batch.
OVERSUBSCRIBE = 4

#: Calibration pre-bound into each worker by the pool initializer, so
#: batches carry only specs (the calibration would otherwise be
#: re-pickled with every task).
_WORKER_CALIBRATION: Optional[Calibration] = None


def _warm_worker(calibration: Calibration, workloads: Sequence[str]) -> None:
    """Pool initializer: runs once per worker process.  Binds the
    calibration (priming its memoized ref) and pre-imports the
    measurement stack for the run's workloads, so per-batch cost is
    pure simulation."""
    global _WORKER_CALIBRATION
    _WORKER_CALIBRATION = calibration
    calibration_ref(calibration)
    from repro.scenario.registry import preload
    preload(workloads)


def _batch_worker(specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
    """Run one pickled spec batch against the worker's bound
    calibration; results return as one pickled batch."""
    calibration = _WORKER_CALIBRATION or DEFAULT_CALIBRATION
    return [run_scenario(spec, calibration) for spec in specs]


class ProcessPoolBackend:
    """Parallel execution across a persistent warm worker pool.

    Results return in input order and are value-identical to the
    sequential backend's because the specs pin every seed.  Worker obs
    metrics ship back inside the results and are folded into this
    process's registry once per batch.

    **Worker lifecycle.**  The ``ProcessPoolExecutor`` is created
    lazily on first use and *reused across ``run()`` calls*: process
    spawn, interpreter start, simulation-stack imports and calibration
    transfer are paid once per backend, not once per sweep chunk.  The
    pool is rebuilt only when the calibration changes (workers pre-bind
    it) or after a breakdown/timeout.  ``close()`` (or ``with``)
    releases the workers.

    **Batched dispatch.**  Specs are split into contiguous chunks --
    adaptive size ``ceil(len(specs) / (workers * OVERSUBSCRIBE))``,
    overridable via ``chunk`` -- and travel as pickled batches, not
    one JSON-dict future per scenario.  Collection uses
    ``as_completed`` under a wall-clock deadline, so a slow batch never
    head-of-line blocks the finished ones.

    Crash tolerance: a worker dying (OOM kill, segfault) breaks the
    executor and poisons every batch still pending, but results
    collected before the break are intact -- so instead of aborting the
    sweep, the backend discards the broken pool and reruns the poisoned
    specs sequentially in this process.  Breakdowns and retried specs
    are counted (``scenario_pool_breaks_total`` /
    ``scenario_pool_retries_total``) so a flaky fleet is observable.

    A worker that *hangs* is different: silently rerunning it would
    hang the parent too, so ``timeout`` (wall-clock seconds per
    scenario result) bounds the whole collection -- the deadline is
    ``timeout x chunk x rounds``, the worst-case serial depth per
    worker -- kills the pool and raises
    :class:`~repro.errors.ScenarioTimeoutError` naming the scenarios
    that never finished (everything else was already collected).
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 chunk: Optional[int] = None) -> None:
        self.max_workers = max_workers or default_worker_count()
        self.timeout = timeout
        self.chunk = chunk
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_cal_ref: Optional[str] = None

    # -- pool lifecycle ---------------------------------------------------

    def _ensure_pool(self, calibration: Calibration,
                     workloads: Sequence[str]) -> ProcessPoolExecutor:
        ref = calibration_ref(calibration)
        if self._pool is not None and self._pool_cal_ref == ref:
            return self._pool
        self.close()
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_warm_worker,
            initargs=(calibration, tuple(workloads)))
        self._pool_cal_ref = ref
        return self._pool

    def _discard_pool(self, terminate: bool = False) -> None:
        """Drop the pool (broken, wedged, or closing); the next run
        builds a fresh one."""
        pool, self._pool, self._pool_cal_ref = self._pool, None, None
        if pool is None:
            return
        if terminate:
            # A wedged worker would make shutdown() join forever.
            for proc in list(pool._processes.values()):
                proc.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Release the warm workers (idempotent)."""
        self._discard_pool()

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduling -------------------------------------------------------

    def chunk_size(self, n: int) -> int:
        """Specs per batch: the explicit ``chunk`` if given, else
        adaptive from ``len(specs) / workers`` with ``OVERSUBSCRIBE``
        batches per worker for straggler rebalancing."""
        if self.chunk:
            return max(1, int(self.chunk))
        return max(1, math.ceil(n / (self.max_workers * OVERSUBSCRIBE)))

    def run(self, specs: Sequence[ScenarioSpec],
            calibration: Calibration = DEFAULT_CALIBRATION
            ) -> List[ScenarioResult]:
        if not specs:
            return []
        # Export the configured width even when the run degenerates to
        # sequential (1 worker / 1 spec): dashboards on single-core
        # containers otherwise never see the gauge at all.
        obs.REGISTRY.gauge(
            "scenario_pool_workers",
            "worker processes of the warm scenario pool",
        ).set(self.max_workers)
        if min(self.max_workers, len(specs)) <= 1:
            return SequentialBackend().run(specs, calibration)
        chunk = self.chunk_size(len(specs))
        batches = [range(start, min(start + chunk, len(specs)))
                   for start in range(0, len(specs), chunk)]
        pool = self._ensure_pool(
            calibration, sorted({s.workload for s in specs}))

        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        poisoned: List[int] = []
        broke = False
        futures = {}
        for idxs in batches:
            try:
                future = pool.submit(
                    _batch_worker, [specs[i] for i in idxs])
            except BrokenExecutor:  # died mid-submission
                broke = True
                poisoned.extend(idxs)
                continue
            futures[future] = idxs

        # Worst-case serial depth per worker bounds the wall clock.
        rounds = math.ceil(len(batches) / self.max_workers)
        budget = (None if self.timeout is None
                  else self.timeout * chunk * rounds)
        try:
            for future in as_completed(futures, timeout=budget):
                idxs = futures[future]
                try:
                    batch = future.result()
                except BrokenExecutor:
                    broke = True
                    poisoned.extend(idxs)
                    continue
                merged: Dict[str, float] = {}
                for i, result in zip(idxs, batch):
                    results[i] = result
                    for key, delta in result.metrics.items():
                        merged[key] = merged.get(key, 0.0) + delta
                fold_metrics(obs.REGISTRY, merged)  # once per batch
        except FuturesTimeoutError:
            pending = sorted(i for f, idxs in futures.items()
                             if not f.done() for i in idxs)
            completed = sum(1 for r in results if r is not None)
            self._discard_pool(terminate=True)
            names = ", ".join(
                f"{specs[i].content_hash()[:12]} ({specs[i].display_label})"
                for i in pending[:4])
            if len(pending) > 4:
                names += f", ... ({len(pending) - 4} more)"
            raise ScenarioTimeoutError(
                f"{len(pending)} scenario(s) produced no result within "
                f"the {budget:.1f}s deadline ({self.timeout}s/scenario): "
                f"{names}; {completed} finished result(s) were collected",
                pending=[specs[i].display_label for i in pending],
                completed=completed)
        except BaseException:
            # A workload raised (or the caller interrupted): drop the
            # still-queued batches so the warm pool drains, then
            # propagate like the sequential backend would.
            for future in futures:
                future.cancel()
            raise

        if broke:
            self._discard_pool()
            obs.REGISTRY.counter(
                "scenario_pool_breaks_total",
                "process-pool breakdowns survived by sequential fallback",
            ).inc()
            retries = obs.REGISTRY.counter(
                "scenario_pool_retries_total",
                "scenarios rerun in-process after a pool breakdown")
            for i in sorted(poisoned):
                retries.inc()
                # In-process rerun hits the parent registry directly;
                # no metrics fold (that would double-count).
                results[i] = run_scenario(specs[i], calibration)
        return results


class Engine:
    """Cache-aware scenario execution with a pluggable backend."""

    def __init__(self, backend=None, store=None,
                 calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.backend = backend or SequentialBackend()
        self.store = store  # None = no caching
        self.calibration = calibration

    def run(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run ``specs``, serving store hits and deduplicating identical
        specs within the batch; results in input order.  The store is
        probed and filled through its batched ``get_many``/``put_many``
        entry points -- one store round per run, not one per spec."""
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        unique: List[int] = []
        first_of: Dict[str, int] = {}
        dupes: List[tuple] = []  # (index, first-index)

        for i, spec in enumerate(specs):
            key = spec.content_hash()
            if key in first_of:
                dupes.append((i, first_of[key]))
                continue
            first_of[key] = i
            unique.append(i)

        if self.store is not None and unique:
            hits = self.store.get_many([specs[i] for i in unique])
        else:
            hits = [None] * len(unique)

        pending: List[ScenarioSpec] = []
        pending_idx: List[int] = []
        for i, hit in zip(unique, hits):
            if hit is not None:
                results[i] = hit.relabeled(specs[i], cached=True)
            else:
                pending.append(specs[i])
                pending_idx.append(i)

        fresh = self.backend.run(pending, self.calibration)
        for i, result in zip(pending_idx, fresh):
            results[i] = result
        if self.store is not None and fresh:
            self.store.put_many(zip(pending, fresh))

        for i, j in dupes:
            results[i] = results[j].relabeled(specs[i], cached=True)
        return results

    def run_one(self, spec: ScenarioSpec) -> ScenarioResult:
        return self.run([spec])[0]
