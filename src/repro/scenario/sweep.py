"""Cartesian sweeps over deployment-spec fields.

``build_grid`` expands a :class:`SweepGrid` (level x compartments x
tenants x datapath x resource mode x traffic) into a list of
:class:`~repro.scenario.spec.ScenarioSpec`, silently collapsing
redundant axes (the compartment axis only applies to Level-2) and
recording -- not raising on -- combinations the model itself rejects
(DPDK in shared mode, v2v behind per-tenant compartments, ...), exactly
the way the paper's own evaluation skips its infeasible corners.

Each point's seed is derived from the sweep's master seed via
:meth:`RngStreams.fork <repro.sim.rng.RngStreams.fork>` on the point's
identity, so any subset of the grid -- resumed, re-ordered, sharded
across backends or machines -- reproduces the exact numbers of the full
run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from typing import IO, List, Sequence, Tuple

from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ValidationError
from repro.measure.reporting import Series, Table
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.sim.rng import RngStreams

LEVELS = {
    "baseline": SecurityLevel.BASELINE,
    "l1": SecurityLevel.LEVEL_1,
    "l2": SecurityLevel.LEVEL_2,
}

MODES = {
    "shared": ResourceMode.SHARED,
    "isolated": ResourceMode.ISOLATED,
}

DATAPATHS = ("kernel", "dpdk")


@dataclass(frozen=True)
class SweepGrid:
    """The axes of one cartesian sweep plus its fixed knobs."""

    workload: str = "fig5.latency"
    levels: Tuple[str, ...] = ("baseline", "l1", "l2")
    compartments: Tuple[int, ...] = (2,)
    tenants: Tuple[int, ...] = (4,)
    datapaths: Tuple[str, ...] = ("kernel",)
    modes: Tuple[str, ...] = ("shared",)
    traffic: Tuple[str, ...] = ("p2v",)
    duration: float = 0.1
    frame_bytes: int = 64
    rate_pps: float = 10_000.0
    nic_ports: int = 2
    seed: int = 0
    #: Fabric axes (``fabric.*`` workloads): fleet sizes and placement
    #: policies to grid over.  Empty tuples (the default) add nothing
    #: to the point params, so pre-fabric spec hashes are unchanged.
    servers: Tuple[int, ...] = ()
    placements: Tuple[str, ...] = ()
    #: Optional fault campaign applied to every point (``repro sweep
    #: --faults plan.json``); rides on each spec, so it keys the cache.
    faults: object = None


@dataclass
class SkippedPoint:
    """A grid corner the model rejects, with the reason."""

    point_id: str
    reason: str


def _point_id(level: str, vms: int, tenants: int, datapath: str,
              mode: str, traffic: str) -> str:
    compartments = f"({vms})" if level == "l2" else ""
    return f"{level}{compartments}x{tenants}T/{datapath}/{mode}/{traffic}"


def build_grid(grid: SweepGrid
               ) -> Tuple[List[ScenarioSpec], List[SkippedPoint]]:
    """Expand the grid; returns (specs, skipped corners)."""
    streams = RngStreams(grid.seed)
    specs: List[ScenarioSpec] = []
    skipped: List[SkippedPoint] = []
    seen = set()
    is_fabric = grid.workload.startswith("fabric.")
    for (level, vms, tenants, datapath, mode, traffic, servers,
         placement) in product(
            grid.levels, grid.compartments, grid.tenants, grid.datapaths,
            grid.modes, grid.traffic, grid.servers or (0,),
            grid.placements or ("",)):
        if level not in LEVELS:
            raise ValidationError(f"unknown level {level!r}")
        if mode not in MODES:
            raise ValidationError(f"unknown resource mode {mode!r}")
        if datapath not in DATAPATHS:
            raise ValidationError(f"unknown datapath {datapath!r}")
        effective_vms = vms if level == "l2" else 1
        point = _point_id(level, effective_vms, tenants, datapath, mode,
                          traffic)
        if servers:
            point += f"/s{servers}"
        if placement:
            point += f"/{placement}"
        if point in seen:  # compartment axis collapsed for non-L2
            continue
        seen.add(point)
        if is_fabric and level == "baseline":
            skipped.append(SkippedPoint(
                point, "fabric workloads need an MTS level (l1/l2)"))
            continue
        try:
            deployment = DeploymentSpec(
                level=LEVELS[level],
                num_tenants=tenants,
                num_vswitch_vms=effective_vms,
                resource_mode=MODES[mode],
                user_space=(datapath == "dpdk"),
                # The multi-server dataplane bonds each server to the
                # fabric through one physical port.
                nic_ports=1 if is_fabric else grid.nic_ports,
            )
            spec = ScenarioSpec(
                workload=grid.workload,
                deployment=deployment,
                traffic=TrafficScenario(traffic),
                duration=grid.duration,
                warmup=grid.duration / 5.0,
                seed=streams.fork(f"sweep:{point}").seed,
                label=point,
                eval_mode=mode,
                params=dict(
                    {"frame_bytes": grid.frame_bytes,
                     "aggregate_pps": grid.rate_pps},
                    **({"servers": servers} if servers else {}),
                    **({"placement": placement} if placement else {}),
                ),
                faults=grid.faults,
            )
        except ValidationError as exc:
            skipped.append(SkippedPoint(point, str(exc)))
            continue
        specs.append(spec)
    return specs, skipped


def sweep_table(grid: SweepGrid, specs: Sequence[ScenarioSpec],
                results: Sequence[ScenarioResult]) -> Table:
    """All sweep points as one table: a series per point, a column per
    measured value."""
    cached = sum(1 for r in results if r.cached)
    table = Table(
        title=f"sweep {grid.workload}: {len(results)} points "
              f"({cached} cached)",
        fmt=lambda v: f"{v:.4g}",
    )
    for spec, result in zip(specs, results):
        series = Series(label=spec.display_label)
        for name in result.values:
            series.add(name, result.values[name])
        table.add_series(series)
    return table


def write_jsonl(handle: IO[str], specs: Sequence[ScenarioSpec],
                results: Sequence[ScenarioResult]) -> int:
    """One self-describing JSON line per point; returns the count."""
    for spec, result in zip(specs, results):
        handle.write(json.dumps({
            "spec": spec.to_dict(),
            "spec_hash": spec.content_hash(),
            "result": result.to_dict(),
            "result_hash": result.result_hash(),
        }, sort_keys=True) + "\n")
    return len(results)
