"""The content-addressed result store.

One JSON file per computed scenario, named by the spec's content hash
(which already folds in the calibration ref), so the cache can never
serve numbers computed under different constants.  Files carry the full
spec next to the result for auditability -- ``get`` re-verifies the
stored spec's hash before trusting a file, so a corrupt or hand-edited
entry degrades to a miss, never to wrong numbers.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.scenario.spec import ScenarioResult, ScenarioSpec

#: Default cache location (overridable per store / via CLI).
DEFAULT_STORE_DIR = ".repro-cache"


class ResultStore:
    """Content-addressed scenario results on disk."""

    def __init__(self, root: str = DEFAULT_STORE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        os.makedirs(root, exist_ok=True)

    def path_for(self, spec: ScenarioSpec) -> str:
        return os.path.join(self.root, spec.content_hash() + ".json")

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            stored = ScenarioSpec.from_dict(entry["spec"])
            if stored.content_hash() != spec.content_hash():
                raise ValueError("stored spec does not match its key")
            result = ScenarioResult.from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> str:
        """Write atomically (temp file + rename) so a crashed run never
        leaves a truncated entry behind."""
        path = self.path_for(spec)
        entry = {"spec": spec.to_dict(), "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    # -- batched probes ---------------------------------------------------
    #
    # The engine probes and fills the cache in batches so a sweep pays
    # one store round per run, not one per point.  Specs memoize their
    # content hash, so the per-spec cost here is one ``open`` -- but the
    # batched entry points are the API contract that lets a future store
    # (sqlite, remote) answer a whole sweep in one query.

    def get_many(self, specs: Sequence[ScenarioSpec]
                 ) -> List[Optional[ScenarioResult]]:
        """One positional result (or ``None``) per spec."""
        return [self.get(spec) for spec in specs]

    def put_many(self, pairs: Iterable[Tuple[ScenarioSpec, ScenarioResult]]
                 ) -> int:
        """Store every (spec, result) pair; returns the count written."""
        count = 0
        for spec, result in pairs:
            self.put(spec, result)
            count += 1
        return count

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))


class NullStore:
    """The ``--no-cache`` escape hatch: never hits, never writes."""

    hits = 0
    misses = 0

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        return None

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> None:
        return None

    def get_many(self, specs: Sequence[ScenarioSpec]
                 ) -> List[Optional[ScenarioResult]]:
        return [None] * len(specs)

    def put_many(self, pairs: Iterable[Tuple[ScenarioSpec, ScenarioResult]]
                 ) -> int:
        return 0

    def __len__(self) -> int:
        return 0
