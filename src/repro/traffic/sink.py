"""Sink and DAG-style latency monitor.

The paper measures one-way forwarding performance by tapping both the
LG->DUT and DUT->sink links with a passive optical tap into an Endace
DAG card, giving hardware timestamps on both sides.  The
:class:`LatencyMonitor` replicates that: it observes both taps, pairs
sightings of the same frame, and records one-way latency samples with
their timestamps so experiments can cut evaluation windows (e.g. the
10-20 s slice of a 30 s run).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.interfaces import Port
from repro.net.link import OpticalTap
from repro.net.packet import Frame, FrameBatch


class Sink:
    """Terminal packet counter (per flow and total, windowed)."""

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.port = Port(f"{name}.rx", self._on_frame)
        self.port.connect_batch(self._on_batch)
        self.total = 0
        self.per_flow: Dict[int, int] = defaultdict(int)
        #: (timestamp-less) arrival log is not kept; windowed counting is
        #: done by the monitor, which has timestamps.

    def _on_frame(self, frame: Frame) -> None:
        self.total += 1
        self.per_flow[frame.flow_id] += 1

    def _on_batch(self, batch: FrameBatch) -> None:
        self.total += len(batch)
        self.per_flow[batch.frame.flow_id] += len(batch)


@dataclass
class LatencySample:
    flow_id: int
    t_in: float
    t_out: float

    @property
    def latency(self) -> float:
        return self.t_out - self.t_in


class LatencyMonitor:
    """Pairs frame sightings on the ingress and egress taps."""

    def __init__(self, ingress_tap: OpticalTap, egress_tap: OpticalTap) -> None:
        self._pending: Dict[int, Tuple[int, float]] = {}
        self.samples: List[LatencySample] = []
        self.egress_times: List[Tuple[float, int]] = []  # (t, flow_id)
        self.unmatched_egress = 0
        ingress_tap.observe(self._on_ingress)
        egress_tap.observe(self._on_egress)
        ingress_tap.observe_batch(self._on_ingress_batch)
        egress_tap.observe_batch(self._on_egress_batch)

    def _on_ingress(self, frame: Frame, now: float) -> None:
        self._pending[frame.frame_id] = (frame.flow_id, now)

    def _on_egress(self, frame: Frame, now: float) -> None:
        self.egress_times.append((now, frame.flow_id))
        entry = self._pending.pop(frame.frame_id, None)
        if entry is None:
            self.unmatched_egress += 1
            return
        flow_id, t_in = entry
        self.samples.append(LatencySample(flow_id=flow_id, t_in=t_in, t_out=now))

    def _on_ingress_batch(self, batch: FrameBatch, starts: List[float]) -> None:
        flow_id = batch.frame.flow_id
        pending = self._pending
        for i, fid in enumerate(batch.frame_ids):
            pending[fid] = (flow_id, starts[i])

    def _on_egress_batch(self, batch: FrameBatch, starts: List[float]) -> None:
        egress = self.egress_times
        samples = self.samples
        pending = self._pending
        flow_id = batch.frame.flow_id
        for i, fid in enumerate(batch.frame_ids):
            now = starts[i]
            egress.append((now, flow_id))
            entry = pending.pop(fid, None)
            if entry is None:
                self.unmatched_egress += 1
            else:
                samples.append(LatencySample(flow_id=entry[0], t_in=entry[1],
                                             t_out=now))

    # -- windowed reductions ------------------------------------------------

    def latencies_in_window(self, t0: float, t1: float,
                            flow_id: Optional[int] = None) -> List[float]:
        """One-way latencies of frames that *entered* in [t0, t1)."""
        return [
            s.latency for s in self.samples
            if t0 <= s.t_in < t1 and (flow_id is None or s.flow_id == flow_id)
        ]

    def delivered_in_window(self, t0: float, t1: float,
                            flow_id: Optional[int] = None) -> int:
        return sum(1 for t, fid in self.egress_times
                   if t0 <= t < t1 and (flow_id is None or fid == flow_id))

    def throughput_pps(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            raise ValueError("empty window")
        return self.delivered_in_window(t0, t1) / (t1 - t0)

    def loss_count(self) -> int:
        """Frames seen entering but never leaving (so far)."""
        return len(self._pending)
