"""The load generator (the paper's dagflood role).

Replays one or more constant-rate UDP flows onto a link.  Each flow is
addressed to a tenant: destination MAC chosen so the NIC delivers it to
the right vswitch compartment, destination IP identifying the tenant VM
(exactly how the paper's streams are built: "4 flows, each to a
respective tenant VM identified by the destination MAC and IP
address").
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.link import Link
from repro.net.packet import Frame, FrameBatch, IpProto, next_frame_id
from repro.sim.kernel import Simulator


@dataclass
class FlowConfig:
    """One constant-rate flow."""

    flow_id: int
    dst_mac: MacAddress
    dst_ip: IPv4Address
    src_mac: MacAddress
    src_ip: IPv4Address
    rate_pps: float
    frame_bytes: int = 64
    tenant_id: Optional[int] = None
    proto: IpProto = IpProto.UDP
    tunnel_id: Optional[int] = None
    #: Draw a fresh random source port per packet: every packet then
    #: misses the vswitch's flow cache (the policy-injection DoS
    #: traffic pattern).
    randomize_src_port: bool = False

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError(f"flow {self.flow_id}: rate must be positive")


#: Frames emitted per DES event, matching the DPDK burst=32 model in
#: :mod:`repro.vswitch.datapath`: a PMD hands the wire a vector of
#: frames per poll, with per-frame timestamps spaced analytically at
#: the flow's constant rate.
DEFAULT_BURST = 32

#: Burst used when the harness switches the generator to batched
#: emission.  Emitted timestamps are analytic per frame, so burst size
#: never changes results -- only how many frames ride one DES event.
#: The batched mediation chain amortizes per-batch work, so it pays to
#: hand it wider vectors than the DPDK-faithful per-frame default.
BATCHED_BURST = 128


class LoadGenerator:
    """Emits flows onto a link for a bounded duration.

    The generator fires one DES event per *burst* of ``burst`` frames
    rather than one per frame: the next ``burst`` frames across all
    flows are handed to the link in merged timestamp order, each with
    its analytically computed constant-rate timestamp (the link
    serializes from that timestamp, see
    :meth:`repro.net.link.Link.send`).  The emitted stream is therefore
    timestamp-identical to per-frame scheduling -- including the
    inter-flow interleaving that keeps the wire's serialization chain
    monotone -- at a fraction of the event cost.  ``burst=1`` recovers
    per-frame behaviour.
    """

    def __init__(self, sim: Simulator, link: Link, name: str = "lg",
                 rng: Optional[random.Random] = None,
                 burst: int = DEFAULT_BURST) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.sim = sim
        self.link = link
        self.name = name
        self.rng = rng if rng is not None else random.Random(0)
        self.burst = burst
        self.flows: List[FlowConfig] = []
        self.sent = 0
        self._stop_at: Optional[float] = None
        #: Emit bursts as struct-of-arrays :class:`FrameBatch` objects
        #: instead of per-frame sends (the batched fast path).  Set by
        #: the harness; requires every downstream hop the batch reaches
        #: untraced operation, and is ignored for randomized-src-port
        #: flows (each such packet genuinely differs).
        self.batch = False

    def supports_batching(self) -> bool:
        """Batched emission is exact only when every frame of a flow
        shares one header signature."""
        return not any(f.randomize_src_port for f in self.flows)

    def add_flow(self, flow: FlowConfig) -> None:
        self.flows.append(flow)

    @property
    def aggregate_rate_pps(self) -> float:
        return sum(f.rate_pps for f in self.flows)

    def start(self, duration: float, start_at: float = 0.0) -> None:
        """Schedule all flows; emissions stop after ``duration`` seconds.

        Flows are phase-shifted slightly so four same-rate flows do not
        arrive in lockstep bursts.
        """
        if not self.flows:
            raise ValueError("no flows configured")
        self._stop_at = self.sim.now + start_at + duration
        # Min-heap of (next emission time, flow index, flow): bursts pop
        # the globally next frames in merged timestamp order, so the
        # link sees the same arrival sequence per-frame scheduling
        # produced.  The flow index breaks (never-occurring) time ties
        # deterministically.
        self._schedule = []
        for i, flow in enumerate(self.flows):
            phase = (i / max(1, len(self.flows))) / flow.rate_pps
            heapq.heappush(self._schedule,
                           (self.sim.now + start_at + phase, i, flow))
        self.sim.schedule(self._schedule[0][0], self._emit)

    def _emit(self) -> None:
        """Emit the next burst of frames (across all flows, in timestamp
        order) and reschedule at the following frame's timestamp."""
        assert self._stop_at is not None
        if self.batch:
            self._emit_batched()
            return
        schedule = self._schedule
        emitted = 0
        while schedule and emitted < self.burst:
            t, i, flow = schedule[0]
            if t >= self._stop_at:
                heapq.heappop(schedule)
                continue
            src_port = (self.rng.randint(1024, 65535)
                        if flow.randomize_src_port else 0)
            frame = Frame(
                src_mac=flow.src_mac,
                dst_mac=flow.dst_mac,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                proto=flow.proto,
                src_port=src_port,
                size_bytes=flow.frame_bytes,
                created_at=t,
                flow_id=flow.flow_id,
                tenant_id=flow.tenant_id,
                tunnel_id=flow.tunnel_id,
            )
            self.link.send(frame, at=t)
            self.sent += 1
            emitted += 1
            heapq.heapreplace(schedule, (t + 1.0 / flow.rate_pps, i, flow))
        if schedule and schedule[0][0] < self._stop_at:
            self.sim.schedule(schedule[0][0], self._emit)

    def _emit_batched(self) -> None:
        """Emit the next burst as one :class:`FrameBatch` per flow.

        The same merged-order pop as :meth:`_emit` decides which frames
        the burst contains, and frame ids are drawn in that merged
        order, so ids (and everything keyed by them -- jitter draws,
        latency pairing) are identical to the per-frame path.  The link
        then busy-chains all members in merged timestamp order via
        :meth:`~repro.net.link.Link.send_interleaved`.
        """
        assert self._stop_at is not None
        schedule = self._schedule
        emitted = 0
        order: List[int] = []
        per_flow: dict = {}
        while schedule and emitted < self.burst:
            t, i, flow = schedule[0]
            if t >= self._stop_at:
                heapq.heappop(schedule)
                continue
            data = per_flow.get(i)
            if data is None:
                data = (flow, [], [])
                per_flow[i] = data
                order.append(i)
            data[1].append(next_frame_id())
            data[2].append(t)
            emitted += 1
            heapq.heapreplace(schedule, (t + 1.0 / flow.rate_pps, i, flow))
        if per_flow:
            batches = []
            for i in order:
                flow, ids, ts = per_flow[i]
                exemplar = Frame(
                    src_mac=flow.src_mac,
                    dst_mac=flow.dst_mac,
                    src_ip=flow.src_ip,
                    dst_ip=flow.dst_ip,
                    proto=flow.proto,
                    src_port=0,
                    size_bytes=flow.frame_bytes,
                    created_at=ts[0],
                    flow_id=flow.flow_id,
                    tenant_id=flow.tenant_id,
                    tunnel_id=flow.tunnel_id,
                    frame_id=ids[0],
                )
                batches.append(FrameBatch(exemplar, ids, ts))
                self.sent += len(ids)
            self.link.send_interleaved(batches)
        if schedule and schedule[0][0] < self._stop_at:
            self.sim.schedule(schedule[0][0], self._emit)
