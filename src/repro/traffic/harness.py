"""The measurement harness: LG -> (tap) -> DUT -> (tap) -> sink.

``TestbedHarness`` reproduces the paper's two-server setup around a
built deployment: the load generator feeds the DUT's ingress NIC port
over a 10G link, the DUT's egress port feeds the sink, and passive taps
on both links drive the latency monitor.  One-port deployments (the
Fig. 6 workload topology) hairpin: ingress and egress share port 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs as _obs
from repro.core.deployment import Deployment
from repro.measure.stats import SummaryStats, summarize
from repro.net.addresses import MacAddress
from repro.net.link import Link, OpticalTap
from repro.net import packet
from repro.net.packet import IpProto
from repro.traffic.generator import (BATCHED_BURST, DEFAULT_BURST,
                                     FlowConfig, LoadGenerator)
from repro.traffic.sink import LatencyMonitor, Sink
from repro.units import GBPS


@dataclass
class HarnessResult:
    """Windowed measurements of one run."""

    offered_pps: float
    delivered_pps: float
    sent: int
    delivered: int
    latencies: List[float]
    window: tuple

    @property
    def loss_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.delivered / self.sent)

    def latency_stats(self) -> SummaryStats:
        return summarize(self.latencies, empty_ok=True)


class TestbedHarness:
    """LG, DUT and sink wired together for one deployment."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, deployment: Deployment,
                 link_bandwidth_bps: float = 10 * GBPS,
                 batch: bool = False) -> None:
        # Frame ids restart per harnessed run: per-frame jitter draws
        # are keyed by them, and runs must not depend on how many
        # frames earlier runs in this process created.
        packet.reset_frame_ids()
        self.deployment = deployment
        #: Requested struct-of-arrays fast path.  Resolved at
        #: :meth:`run` -- tracing, cache-busting flows or an untimed
        #: deployment silently fall back to the per-frame oracle path.
        self.batch = batch
        self.sim = deployment.sim
        self.ingress_tap = OpticalTap("tap.lg-dut")
        self.egress_tap = OpticalTap("tap.dut-sink")
        self.sink = Sink()
        self.monitor = LatencyMonitor(self.ingress_tap, self.egress_tap)

        ingress_port = 0
        egress_port = deployment.egress_port_index()
        self.ingress_link = Link(
            self.sim,
            dst=deployment.external_ingress(ingress_port),
            bandwidth_bps=link_bandwidth_bps,
            propagation_delay=deployment.calibration.wire_propagation,
            tap=self.ingress_tap,
            name="link.lg-dut",
        )
        self.egress_link = Link(
            self.sim,
            dst=self.sink.port,
            bandwidth_bps=link_bandwidth_bps,
            propagation_delay=deployment.calibration.wire_propagation,
            tap=self.egress_tap,
            name="link.dut-sink",
        )
        deployment.connect_egress(egress_port, self.egress_link)

        self.lg = LoadGenerator(self.sim, self.ingress_link)
        self._lg_mac = MacAddress.parse("02:1b:00:00:00:01")

    def add_tenant_flow(self, tenant: int, rate_pps: float,
                        frame_bytes: int = 64,
                        randomize_src_port: bool = False) -> None:
        """One flow towards ``tenant`` at an arbitrary rate (asymmetric
        loads, e.g. the noisy-neighbor experiment).
        ``randomize_src_port`` makes every packet a fresh microflow --
        the flow-cache-busting pattern of the policy-injection DoS."""
        d = self.deployment
        plan = d.plan
        tunnel_id = plan.vni(tenant) if d.spec.tunneling else None
        self.lg.add_flow(FlowConfig(
            flow_id=tenant,
            dst_mac=d.ingress_dmac_for_tenant(tenant, port_index=0),
            dst_ip=plan.tenant_ip(tenant),
            src_mac=self._lg_mac,
            src_ip=plan.external_ip(tenant),
            rate_pps=rate_pps,
            frame_bytes=frame_bytes,
            tenant_id=tenant,
            proto=IpProto.UDP,
            tunnel_id=tunnel_id,
            randomize_src_port=randomize_src_port,
        ))

    def configure_tenant_flows(self, rate_per_flow_pps: float,
                               frame_bytes: int = 64,
                               tenants: Optional[List[int]] = None) -> None:
        """One flow per tenant, addressed exactly as the paper does."""
        if tenants is None:
            tenants = list(range(self.deployment.spec.num_tenants))
        for tenant in tenants:
            self.add_tenant_flow(tenant, rate_per_flow_pps, frame_bytes)

    def run(self, duration: float, warmup: float = 0.0,
            cooldown: float = 0.05) -> HarnessResult:
        """Send for ``duration`` seconds; measure the window after
        ``warmup``.  ``cooldown`` lets in-flight frames land."""
        offered = self.lg.aggregate_rate_pps
        self.deployment.set_offered_rate_hint(offered)
        # A pending fault plan forces the per-frame oracle path: fault
        # and heal instants land at arbitrary sim times, and a batch
        # whose members straddle one would deliver or drop as a unit
        # where the oracle splits it at the instant.
        from repro.faults import runtime as _chaos
        if (self.batch and not _obs.TRACER.enabled
                and not _chaos.chaos_pending()
                and self.lg.supports_batching()
                and self.deployment.supports_batched_fastpath()):
            self.deployment.enable_batched_fastpath()
            self.lg.batch = True
            # Wider bursts amortize per-batch work; timestamps are
            # analytic per frame, so results are burst-invariant.  A
            # caller-customized burst (tests pinning batch shapes) is
            # left alone.
            if self.lg.burst == DEFAULT_BURST:
                self.lg.burst = BATCHED_BURST
            # Unbounded-margin groups hold until their burst completes;
            # bursts cut short by the end of traffic need a sweep while
            # the simulation is still running.
            self.sim.call_later(duration + cooldown * 0.5,
                                self.deployment.drain_batches)
        # A fault plan on the running scenario's spec attaches here, so
        # any harness-based workload is chaos-capable without changes.
        chaos_session = _chaos.attach_active_session(self, horizon=duration)
        # Likewise for metering: a spec that asked for billing gets a
        # session that windows usage while this run executes.
        from repro.billing import runtime as _metering
        meter_session = _metering.attach_active_session(
            self, horizon=duration, chaos=chaos_session)
        self.lg.start(duration)
        self.sim.run(until=self.sim.now + duration + cooldown)
        t0, t1 = warmup, duration
        delivered = self.monitor.delivered_in_window(t0, t1)
        result = HarnessResult(
            offered_pps=offered,
            delivered_pps=delivered / (t1 - t0),
            sent=self.lg.sent,
            delivered=self.sink.total,
            latencies=self.monitor.latencies_in_window(t0, t1),
            window=(t0, t1),
        )
        _obs.on_run_complete(self, result)
        if chaos_session is not None:
            chaos_session.finish()
        if meter_session is not None:
            meter_session.finish()
        return result
