"""Traffic generation, sinks and the measurement harness.

Mirrors the paper's testbed: a load generator replays per-tenant flows
onto the DUT's ingress link, passive optical taps on both links feed a
DAG-style monitor with hardware-quality timestamps, and a sink counts
deliveries.  :class:`~repro.traffic.harness.TestbedHarness` wires a
deployment into that setup and runs measurement windows.
"""

from repro.traffic.capture import Capture, CaptureFilter
from repro.traffic.generator import FlowConfig, LoadGenerator
from repro.traffic.sink import LatencyMonitor, Sink
from repro.traffic.harness import HarnessResult, TestbedHarness

__all__ = [
    "Capture",
    "CaptureFilter",
    "FlowConfig",
    "LoadGenerator",
    "LatencyMonitor",
    "Sink",
    "HarnessResult",
    "TestbedHarness",
]
