"""Packet capture: tcpdump for the simulated dataplane.

A :class:`Capture` attaches to any observation point -- an
:class:`~repro.net.link.OpticalTap`, a :class:`~repro.net.interfaces.Port`
(wrapping its handler), or a VF -- applies an optional
:class:`CaptureFilter` (a BPF-lite conjunctive filter), and keeps a
bounded ring of timestamped frame records that render as familiar
one-line summaries:

    0.000123 02:1b:..:01 > 02:4d:..:03, vlan 100, 192.168.1.10 > 10.0.0.10, UDP 64B

Captures can also be replayed into a port at their original relative
timing -- a poor man's pcap replay for regression debugging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.interfaces import Port
from repro.net.link import OpticalTap
from repro.net.packet import Frame, IpProto
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class CaptureFilter:
    """Conjunctive frame filter; ``None`` fields match anything."""

    src_mac: Optional[MacAddress] = None
    dst_mac: Optional[MacAddress] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    vlan: Optional[int] = None
    proto: Optional[IpProto] = None
    tenant_id: Optional[int] = None
    min_bytes: Optional[int] = None

    def matches(self, frame: Frame) -> bool:
        if self.src_mac is not None and frame.src_mac != self.src_mac:
            return False
        if self.dst_mac is not None and frame.dst_mac != self.dst_mac:
            return False
        if self.src_ip is not None and frame.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and frame.dst_ip != self.dst_ip:
            return False
        if self.vlan is not None and frame.vlan != self.vlan:
            return False
        if self.proto is not None and frame.proto != self.proto:
            return False
        if self.tenant_id is not None and frame.tenant_id != self.tenant_id:
            return False
        if self.min_bytes is not None and frame.size_bytes < self.min_bytes:
            return False
        return True


@dataclass
class CaptureRecord:
    timestamp: float
    frame: Frame

    def summary(self) -> str:
        f = self.frame
        vlan = f", vlan {f.vlan}" if f.vlan is not None else ""
        tunnel = f", vni {f.tunnel_id}" if f.tunnel_id is not None else ""
        l3 = ""
        if f.src_ip is not None or f.dst_ip is not None:
            l3 = f", {f.src_ip} > {f.dst_ip}"
        return (f"{self.timestamp:.6f} {f.src_mac} > {f.dst_mac}"
                f"{vlan}{tunnel}{l3}, {f.proto.name} {f.size_bytes}B")


class Capture:
    """A bounded ring buffer of filtered frame sightings."""

    def __init__(self, name: str = "cap0",
                 flt: Optional[CaptureFilter] = None,
                 max_records: int = 4096) -> None:
        if max_records < 1:
            raise ValueError("capture buffer must hold at least one record")
        self.name = name
        self.filter = flt if flt is not None else CaptureFilter()
        self.records: Deque[CaptureRecord] = deque(maxlen=max_records)
        self.seen = 0
        self.matched = 0

    # -- attachment points ---------------------------------------------------

    def attach_tap(self, tap: OpticalTap) -> "Capture":
        tap.observe(lambda frame, now: self._observe(frame, now))
        return self

    def attach_port(self, port: Port, sim: Simulator) -> "Capture":
        """Wrap a port's handler: observe, then deliver as before."""
        original = port._handler

        def spy(frame: Frame) -> None:
            self._observe(frame, sim.now)
            if original is not None:
                original(frame)

        port.connect(spy)
        return self

    def _observe(self, frame: Frame, now: float) -> None:
        self.seen += 1
        if self.filter.matches(frame):
            self.matched += 1
            self.records.append(CaptureRecord(now, frame))

    # -- reductions ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def frames(self) -> List[Frame]:
        return [record.frame for record in self.records]

    def render(self, limit: Optional[int] = None) -> str:
        records = list(self.records)
        if limit is not None:
            records = records[-limit:]
        header = (f"capture {self.name}: {self.matched}/{self.seen} "
                  f"frames matched, showing {len(records)}")
        return "\n".join([header] + [r.summary() for r in records])

    # -- replay ------------------------------------------------------------------

    def replay(self, sim: Simulator, dst: Port,
               speedup: float = 1.0) -> int:
        """Re-inject the captured frames into ``dst`` with their
        original relative spacing (divided by ``speedup``).  Returns
        the number of frames scheduled."""
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        if not self.records:
            return 0
        base = self.records[0].timestamp
        for record in self.records:
            offset = (record.timestamp - base) / speedup
            sim.call_later(offset, dst.receive, record.frame.copy())
        return len(self.records)
