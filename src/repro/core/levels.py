"""Security levels and resource modes (paper sections 2.3 and 3.2)."""

from __future__ import annotations

from enum import Enum


class SecurityLevel(Enum):
    """Where the vswitch(es) live.

    - **BASELINE**: one vswitch co-located with the Host OS; per-tenant
      logical datapaths share its flow table.
    - **LEVEL_1**: one dedicated vswitch VM; tenant traffic mediated by
      the SR-IOV NIC.
    - **LEVEL_2**: multiple vswitch VMs (per tenant or security zone).

    Level-3 (user-space / DPDK datapath) is orthogonal and combines with
    any of these; it is the ``user_space`` flag on the deployment spec.
    """

    BASELINE = "baseline"
    LEVEL_1 = "level1"
    LEVEL_2 = "level2"

    @property
    def is_mts(self) -> bool:
        return self is not SecurityLevel.BASELINE


class ResourceMode(Enum):
    """How vswitch compartments map onto physical cores (section 3.2).

    - **SHARED**: all vswitch compartments time-share one physical core.
    - **ISOLATED**: each compartment gets a dedicated core (and the
      Baseline receives a proportional number of cores).
    """

    SHARED = "shared"
    ISOLATED = "isolated"


def security_label(level: SecurityLevel, num_vswitch_vms: int,
                   user_space: bool) -> str:
    """The legend label used in the paper's figures, e.g. ``'L2(4)+L3'``."""
    if level is SecurityLevel.BASELINE:
        base = "Baseline"
    elif level is SecurityLevel.LEVEL_1:
        base = "L1"
    else:
        base = f"L2({num_vswitch_vms})"
    return base + ("+L3" if user_space else "")


def boundaries_to_host(level: SecurityLevel, user_space: bool) -> int:
    """Independent security mechanisms that must fail for tenant code to
    reach the Host OS via the vswitch (section 2.3's arithmetic).

    Baseline: one -- compromising the kernel-resident vswitch through
    crafted packets IS compromising the host.  Level-1/2 require a
    second failure (a VM escape on top of the vswitch compromise);
    Level-3 inside a vswitch VM adds the user/kernel split for a third.
    Google's "extra security layer" rule demands at least two.
    """
    count = 1  # the vswitch's own packet-facing attack surface
    if level.is_mts:
        count += 1  # hypervisor boundary of the vswitch VM
    if user_space:
        count += 1  # user/kernel split wherever the vswitch runs
    return count
