"""The centralized controller.

MTS keeps the conventional cloud control plane (paper section 3.2,
"System support"): a logically centralized controller that (i) assigns
per-tenant VLAN tags and MAC addresses to VFs, (ii) installs the flow
rules realizing the ingress and egress chains of Fig. 3 into each
vswitch compartment, (iii) arranges the default-gateway ARP entry in
every tenant VM (statically or via a proxy-ARP responder), and (iv)
deploys the NIC security filters (source-MAC anti-spoofing plus
wildcard rules that pin tenant VFs to their gateway).

The controller also programs the Baseline's host-resident OVS with the
per-tenant logical datapaths of the state-of-the-art design, so both
architectures are driven by the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.arp import ArpTable, ProxyArpResponder
from repro.core.spec import ArpMode, TrafficScenario
from repro.sriov.filters import FilterAction, WildcardFilter
from repro.sriov.nic import SriovNic
from repro.vswitch.actions import Output, PopTunnel, PushTunnel, SetDstMac
from repro.vswitch.flowtable import FlowRule
from repro.vswitch.matches import FlowMatch
from repro.vswitch.ovs import OvsBridge

#: Rule priorities, most-specific first.
PRIO_V2V = 300
PRIO_INGRESS = 200
PRIO_EGRESS = 100


@dataclass
class AddressPlan:
    """The deployment's addressing scheme.

    Tenant ``t`` lives in ``10.0.t.0/24`` (VM at ``.10``, its default
    gateway -- the vswitch's Gw VF -- at ``.1``), carries VLAN
    ``100 + t`` inside the NIC, and VNI ``vni_base + t`` when overlay
    tunneling is enabled.  External endpoints live in ``192.168.0.0/16``.
    """

    external_gw_mac: MacAddress
    vni_base: int = 5000
    #: Site/server index for multi-server clouds: keeps tenant subnets
    #: and VNIs cluster-unique (site 0 matches the single-server plan).
    site_id: int = 0
    external_subnet: IPv4Address = field(
        default_factory=lambda: IPv4Address.parse("192.168.0.0")
    )
    external_prefix: int = 16

    def tenant_ip(self, tenant_id: int) -> IPv4Address:
        return IPv4Address.parse(f"10.{self.site_id}.{tenant_id}.10")

    def tenant_gw_ip(self, tenant_id: int) -> IPv4Address:
        return IPv4Address.parse(f"10.{self.site_id}.{tenant_id}.1")

    def vlan(self, tenant_id: int) -> int:
        return 100 + tenant_id

    def vni(self, tenant_id: int) -> int:
        return self.vni_base + 100 * self.site_id + tenant_id

    def external_ip(self, flow_index: int = 0) -> IPv4Address:
        return IPv4Address.parse(f"192.168.1.{10 + flow_index}")


@dataclass
class CompartmentView:
    """What the controller needs to know about one vswitch compartment."""

    index: int
    bridge: OvsBridge
    tenants: List[int]
    #: NIC port index -> bridge port number of the In/Out port.
    inout_port_no: Dict[int, int]
    #: (tenant, NIC port) -> bridge port number of the gateway port.
    gw_port_no: Dict[Tuple[int, int], int]
    #: (tenant, NIC port) -> the tenant VF's MAC on that port.
    tenant_vf_mac: Dict[Tuple[int, int], MacAddress]
    #: (tenant, NIC port) -> the gateway VF's MAC (ARP target).
    gw_vf_mac: Dict[Tuple[int, int], MacAddress]


@dataclass
class BaselineView:
    """The Baseline's host bridge as the controller sees it."""

    bridge: OvsBridge
    tenants: List[int]
    #: NIC port index -> bridge port number of the physical port.
    phys_port_no: Dict[int, int]
    #: (tenant, side) -> bridge port number of the tenant vhost port.
    vhost_port_no: Dict[Tuple[int, int], int]


class Controller:
    """Programs compartments, the Baseline bridge, ARP and NIC filters."""

    #: Per-tenant OpenFlow table ids start here in multi-table mode.
    TENANT_TABLE_BASE = 10

    def __init__(self, plan: AddressPlan, nic_ports: int,
                 tunneling: bool = False, multi_table: bool = False) -> None:
        self.plan = plan
        self.nic_ports = nic_ports
        self.tunneling = tunneling
        self.multi_table = multi_table
        self.rules_installed = 0
        self.proxy_arp: Dict[int, ProxyArpResponder] = {}

    # -- MTS compartments -------------------------------------------------

    def program_compartment(self, view: CompartmentView,
                            scenario: TrafficScenario) -> None:
        if self.multi_table:
            if scenario is not TrafficScenario.P2V:
                from repro.errors import ValidationError
                raise ValidationError(
                    "multi-table programming is implemented for the p2v "
                    "(workload) wiring")
            self._mts_multi_table(view)
            return
        if scenario is TrafficScenario.P2P:
            self._mts_p2p(view)
            return
        self._mts_tenant_delivery(view)
        self._mts_egress(view)
        if scenario is TrafficScenario.V2V:
            self._mts_v2v(view)

    def _mts_multi_table(self, view: CompartmentView) -> None:
        """OVN-style layout: table 0 classifies the tenant and jumps to
        its logical-datapath table; each tenant table holds only that
        tenant's delivery + default-route rules."""
        from repro.vswitch.actions import GotoTable
        for tenant in view.tenants:
            tenant_table = self.TENANT_TABLE_BASE + tenant
            for p, in_port in view.inout_port_no.items():
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=in_port,
                                    dst_ip=self.plan.tenant_ip(tenant)),
                    actions=[GotoTable(tenant_table)],
                    priority=PRIO_INGRESS,
                    tenant_id=tenant,
                    table_id=0,
                ))
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=view.gw_port_no[(tenant, p)]),
                    actions=[GotoTable(tenant_table)],
                    priority=PRIO_EGRESS,
                    tenant_id=tenant,
                    table_id=0,
                ))
                # Inside the tenant's own table:
                actions = []
                match_kwargs = dict(in_port=in_port,
                                    dst_ip=self.plan.tenant_ip(tenant))
                if self.tunneling:
                    match_kwargs["tunnel_id"] = self.plan.vni(tenant)
                    actions.append(PopTunnel())
                actions.append(SetDstMac(view.tenant_vf_mac[(tenant, p)]))
                actions.append(Output(view.gw_port_no[(tenant, p)]))
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(**match_kwargs),
                    actions=actions,
                    priority=PRIO_INGRESS,
                    tenant_id=tenant,
                    table_id=tenant_table,
                ))
                egress_actions = [SetDstMac(self.plan.external_gw_mac)]
                if self.tunneling:
                    egress_actions.append(PushTunnel(self.plan.vni(tenant)))
                egress_actions.append(Output(view.inout_port_no[p]))
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=view.gw_port_no[(tenant, p)]),
                    actions=egress_actions,
                    priority=PRIO_EGRESS,
                    tenant_id=tenant,
                    table_id=tenant_table,
                ))

    def _egress_port_for(self, ingress_port: int) -> int:
        """Micro-benchmark traffic exits the 'other' NIC port (two-port
        runs) or hairpins back out the same port (one-port runs)."""
        if self.nic_ports == 1:
            return 0
        return 1 - ingress_port

    def _add(self, bridge: OvsBridge, rule: FlowRule) -> None:
        bridge.add_flow(rule)
        self.rules_installed += 1

    def _mts_p2p(self, view: CompartmentView) -> None:
        """Port-to-port forwarding: one rule per tenant flow, no tenant
        VM involved (Fig. 4 p2p)."""
        for tenant in view.tenants:
            for p, in_port in view.inout_port_no.items():
                out = view.inout_port_no[self._egress_port_for(p)]
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=in_port,
                                    dst_ip=self.plan.tenant_ip(tenant)),
                    actions=[SetDstMac(self.plan.external_gw_mac), Output(out)],
                    priority=PRIO_INGRESS,
                    tenant_id=tenant,
                ))

    def _mts_tenant_delivery(self, view: CompartmentView) -> None:
        """Ingress chain (Fig. 3a): rewrite to the tenant VF's MAC and
        emit on the tenant's gateway port."""
        for tenant in view.tenants:
            self._tenant_delivery_rules(view, tenant)

    def _tenant_delivery_rules(self, view: CompartmentView,
                               tenant: int) -> None:
        for p, in_port in view.inout_port_no.items():
            actions = []
            match_kwargs = dict(in_port=in_port,
                                dst_ip=self.plan.tenant_ip(tenant))
            if self.tunneling:
                match_kwargs["tunnel_id"] = self.plan.vni(tenant)
                actions.append(PopTunnel())
            actions.append(SetDstMac(view.tenant_vf_mac[(tenant, p)]))
            actions.append(Output(view.gw_port_no[(tenant, p)]))
            self._add(view.bridge, FlowRule(
                match=FlowMatch(**match_kwargs),
                actions=actions,
                priority=PRIO_INGRESS,
                tenant_id=tenant,
            ))

    def _mts_egress(self, view: CompartmentView) -> None:
        """Egress chain (Fig. 3b): traffic returning on a gateway port
        defaults out the In/Out VF with the external gateway's MAC.
        The rule is a per-gateway-port catch-all (a default route);
        v2v chain rules override it at higher priority."""
        for tenant in view.tenants:
            self._tenant_egress_rules(view, tenant)

    def _tenant_egress_rules(self, view: CompartmentView,
                             tenant: int) -> None:
        for p in view.inout_port_no:
            actions = [SetDstMac(self.plan.external_gw_mac)]
            if self.tunneling:
                actions.append(PushTunnel(self.plan.vni(tenant)))
            actions.append(Output(view.inout_port_no[p]))
            self._add(view.bridge, FlowRule(
                match=FlowMatch(in_port=view.gw_port_no[(tenant, p)]),
                actions=actions,
                priority=PRIO_EGRESS,
                tenant_id=tenant,
            ))

    def program_single_tenant(self, view: CompartmentView,
                              tenant: int) -> None:
        """Runtime provisioning: delivery + egress rules for one tenant
        (p2v connectivity; the orchestrator uses this for hot-add and
        migration)."""
        self._tenant_delivery_rules(view, tenant)
        self._tenant_egress_rules(view, tenant)

    def unprogram_tenant(self, view: CompartmentView, tenant: int) -> int:
        """Withdraw one tenant's logical datapath from a compartment."""
        removed = view.bridge.table.remove_tenant(tenant)
        self.rules_installed -= removed
        return removed

    def v2v_partner(self, view: CompartmentView, tenant: int) -> int:
        """The next tenant in the same compartment (wrapping)."""
        tenants = view.tenants
        return tenants[(tenants.index(tenant) + 1) % len(tenants)]

    def _mts_v2v(self, view: CompartmentView) -> None:
        """Service chaining: after the first tenant returns the flow, pass
        it through the partner tenant, then out."""
        for tenant in view.tenants:
            partner = self.v2v_partner(view, tenant)
            flow_ip = self.plan.tenant_ip(tenant)
            for p in view.inout_port_no:
                # Hop 2: back from the flow's tenant -> to the partner
                # (partners are always delivered on NIC port 0).
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=view.gw_port_no[(tenant, p)],
                                    dst_ip=flow_ip),
                    actions=[SetDstMac(view.tenant_vf_mac[(partner, 0)]),
                             Output(view.gw_port_no[(partner, 0)])],
                    priority=PRIO_V2V,
                    tenant_id=tenant,
                ))
                # Hop 3: back from the partner -> out.
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=view.gw_port_no[(partner, p)],
                                    dst_ip=flow_ip),
                    actions=[SetDstMac(self.plan.external_gw_mac),
                             Output(view.inout_port_no[self._egress_port_for(0)])],
                    priority=PRIO_V2V,
                    tenant_id=tenant,
                ))

    # -- Baseline -----------------------------------------------------------

    def program_baseline(self, view: BaselineView,
                         scenario: TrafficScenario) -> None:
        if scenario is TrafficScenario.P2P:
            for tenant in view.tenants:
                for p, in_port in view.phys_port_no.items():
                    out = view.phys_port_no[self._egress_port_for(p)]
                    self._add(view.bridge, FlowRule(
                        match=FlowMatch(in_port=in_port,
                                        dst_ip=self.plan.tenant_ip(tenant)),
                        actions=[Output(out)],
                        priority=PRIO_INGRESS,
                        tenant_id=tenant,
                    ))
            return
        for tenant in view.tenants:
            for p, in_port in view.phys_port_no.items():
                # Deliver to the tenant's first interface...
                self._add(view.bridge, FlowRule(
                    match=FlowMatch(in_port=in_port,
                                    dst_ip=self.plan.tenant_ip(tenant)),
                    actions=[Output(view.vhost_port_no[(tenant, 0)])],
                    priority=PRIO_INGRESS,
                    tenant_id=tenant,
                ))
            # ...and take it back from the second interface (catch-all
            # default; v2v chain rules override at higher priority).
            return_port = view.vhost_port_no[
                (tenant, 1 if (tenant, 1) in view.vhost_port_no else 0)
            ]
            self._add(view.bridge, FlowRule(
                match=FlowMatch(in_port=return_port),
                actions=[Output(view.phys_port_no[self._egress_port_for(0)])],
                priority=PRIO_EGRESS,
                tenant_id=tenant,
            ))
        if scenario is TrafficScenario.V2V:
            self._baseline_v2v(view)

    def _baseline_v2v(self, view: BaselineView) -> None:
        tenants = view.tenants
        for tenant in tenants:
            partner = tenants[(tenants.index(tenant) + 1) % len(tenants)]
            flow_ip = self.plan.tenant_ip(tenant)
            return_side = 1 if (tenant, 1) in view.vhost_port_no else 0
            partner_return = 1 if (partner, 1) in view.vhost_port_no else 0
            self._add(view.bridge, FlowRule(
                match=FlowMatch(in_port=view.vhost_port_no[(tenant, return_side)],
                                dst_ip=flow_ip),
                actions=[Output(view.vhost_port_no[(partner, 0)])],
                priority=PRIO_V2V,
                tenant_id=tenant,
            ))
            self._add(view.bridge, FlowRule(
                match=FlowMatch(in_port=view.vhost_port_no[(partner, partner_return)],
                                dst_ip=flow_ip),
                actions=[Output(view.phys_port_no[self._egress_port_for(0)])],
                priority=PRIO_V2V,
                tenant_id=tenant,
            ))

    # -- ARP (section 3.2: static entry or proxy-ARP responder) ------------

    #: Priority of the ARP punt rules (above everything else: ARP must
    #: not fall into the IP pipeline).
    PRIO_ARP_PUNT = 400

    def setup_arp(self, mode: ArpMode, view: CompartmentView,
                  tenant_arp_tables: Dict[int, ArpTable]) -> None:
        if mode is ArpMode.STATIC:
            for tenant in view.tenants:
                table = tenant_arp_tables[tenant]
                table.add_static(self.plan.tenant_gw_ip(tenant),
                                 view.gw_vf_mac[(tenant, 0)])
            return
        responder = ProxyArpResponder()
        for tenant in view.tenants:
            responder.install(self.plan.tenant_gw_ip(tenant),
                              view.gw_vf_mac[(tenant, 0)])
            responder.install(self.plan.tenant_ip(tenant),
                              view.tenant_vf_mac[(tenant, 0)])
        self.proxy_arp[view.index] = responder
        # Wire the dataplane: punt ARP from every gateway port to the
        # in-vswitch responder app.
        from repro.core.arp_responder import ArpResponderApp
        from repro.net.packet import EtherType
        from repro.vswitch.actions import Punt
        ArpResponderApp(view.bridge, responder)
        for (tenant, p), port_no in view.gw_port_no.items():
            self._add(view.bridge, FlowRule(
                match=FlowMatch(in_port=port_no,
                                ethertype=EtherType.ARP),
                actions=[Punt()],
                priority=self.PRIO_ARP_PUNT,
                tenant_id=tenant,
            ))

    # -- NIC security filters ----------------------------------------------

    def install_nic_filters(self, nic: SriovNic,
                            view: CompartmentView,
                            tenant_vf_names: Dict[Tuple[int, int], str],
                            allow_broadcast_arp: bool = False) -> None:
        """Pin each tenant VF to its gateway: allow frames to the Gw VF's
        MAC, drop everything else the tenant emits (including attempts to
        reach the Host PF or other tenants directly).

        In proxy-ARP mode tenants must additionally be able to broadcast
        who-has requests (confined to their VLAN by the VEB); in static
        mode even that stays closed -- the tighter posture.
        """
        from repro.net.addresses import BROADCAST_MAC
        for (tenant, p), vf_name in tenant_vf_names.items():
            if tenant not in view.tenants:
                continue
            nic.install_filter(WildcardFilter(
                action=FilterAction.ALLOW,
                priority=10,
                ingress_vf=vf_name,
                dst_mac=view.gw_vf_mac[(tenant, p)],
                name=f"allow-t{tenant}-gw-p{p}",
            ))
            if allow_broadcast_arp:
                nic.install_filter(WildcardFilter(
                    action=FilterAction.ALLOW,
                    priority=10,
                    ingress_vf=vf_name,
                    dst_mac=BROADCAST_MAC,
                    name=f"allow-t{tenant}-arp-p{p}",
                ))
            nic.install_filter(WildcardFilter(
                action=FilterAction.DROP,
                priority=5,
                ingress_vf=vf_name,
                name=f"drop-t{tenant}-rest-p{p}",
            ))
