"""Runtime orchestration: hot-add, remove, and migrate tenants.

The paper sells MTS as *incrementally deployable*: "we can simply use
any desired vswitch, deploy it into a vswitch VM, configure and attach
VFs ... and start processing packets right away", and its discussion
section raises tenant/VM migration.  This module implements that
control-plane lifecycle on a **running** MTS deployment:

- :meth:`MtsOrchestrator.add_tenant` provisions a new tenant end to
  end -- VM, per-port VFs (spoof-checked tenant VF + VLAN-tagged
  gateway VFs on a chosen compartment), bridge ports, the adapted
  l2fwd, flow rules, NIC filters, the static ARP entry -- while other
  tenants keep forwarding.
- :meth:`remove_tenant` withdraws everything in reverse order.
- :meth:`migrate_tenant` re-homes a tenant's vswitch to another
  compartment (e.g. after a zone change).  SR-IOV offers no live
  migration (§6), so the move incurs measurable downtime: each
  control-plane primitive costs :data:`CONTROL_OP_LATENCY` of
  simulated time, rules are withdrawn at the start and reinstalled at
  the end, and frames in between are dropped -- exactly what an
  operator would measure.

Only p2v connectivity (the workload topology) is programmed for
runtime-added tenants; v2v chains are static experiment wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import billing as _billing
from repro.core.controller import CompartmentView
from repro.core.deployment import Deployment
from repro.core.spec import ArpMode
from repro.errors import ConfigurationError
from repro.host.hypervisor import PinPolicy, VmSpec
from repro.host.vm import Vm, VmRole
from repro.sriov.filters import FilterAction, WildcardFilter
from repro.sriov.vf import FunctionKind
from repro.units import MSEC
from repro.vswitch.datapath import PortClass
from repro.vswitch.l2fwd import L2Fwd

#: Cost of one control-plane primitive (API round trip + device
#: reconfiguration).  Real clouds see single-digit milliseconds.
CONTROL_OP_LATENCY = 2.0 * MSEC

#: Rebooting a crashed vswitch VM (kernel boot + OVS start + flow
#: re-installation by the controller).
VSWITCH_RESTART_LATENCY = 1.5


def _fault_noop(op: str) -> None:
    from repro import obs
    obs.REGISTRY.counter(
        "fault_noop_operations_total",
        "redundant fault operations ignored", labels=("op",)
    ).labels(op=op).inc()


def crash_bridge(bridge) -> dict:
    """Stop a vswitch forwarding: its ports blackhole (the process/VM
    died; frames DMA'd to its VFs land in dead rings).  Returns the
    state :func:`restore_bridge` needs.

    Idempotent: crashing an already-crashed bridge is a counted no-op
    (fault schedules may overlap an ongoing outage) that returns the
    original saved state.  Blackholed frames are tallied on
    ``bridge.fault_blackhole_drops`` so chaos runs can close their
    packet-conservation books."""
    if bridge is None or not hasattr(bridge, "ports"):
        raise ConfigurationError(f"not a crashable bridge: {bridge!r}")
    existing = getattr(bridge, "_fault_saved", None)
    if existing is not None:
        _fault_noop("crash")
        return existing
    if not hasattr(bridge, "fault_blackhole_drops"):
        bridge.fault_blackhole_drops = 0
    saved = {}
    saved_batch = {}
    for port in bridge.ports():
        saved[port.port_no] = port
        saved_batch[port.port_no] = port.pair.rx._batch_handler

        def _blackhole(frame, _bridge=bridge) -> None:
            _bridge.fault_blackhole_drops += 1
            if _billing.METER.enabled:
                _billing.METER.fault_drop(getattr(frame, "tenant_id", None))

        def _blackhole_batch(batch, _bridge=bridge) -> None:
            n = len(batch)
            _bridge.fault_blackhole_drops += n
            if _billing.METER.enabled:
                tenant = getattr(batch.frame, "tenant_id", None)
                for _ in range(n):
                    _billing.METER.fault_drop(tenant)

        port.pair.rx.connect(_blackhole)
        # The batched fast path delivers through the batch handler when
        # one is connected; a dead ring swallows those frames too.
        port.pair.rx.connect_batch(_blackhole_batch)
    bridge._fault_saved = saved
    bridge._fault_saved_batch = saved_batch
    return saved


def restore_bridge(bridge, saved: Optional[dict] = None) -> None:
    """Reattach a recovered vswitch to its ports.

    Idempotent: restoring a healthy bridge is a counted no-op.  The
    port map recorded by :func:`crash_bridge` on the bridge itself is
    authoritative; the ``saved`` argument is accepted for backward
    compatibility with callers that thread it through."""
    if bridge is None or not hasattr(bridge, "ports"):
        raise ConfigurationError(f"not a restorable bridge: {bridge!r}")
    current = getattr(bridge, "_fault_saved", None)
    if current is None:
        current = saved  # legacy caller crashed before this change
        if not current:
            _fault_noop("restore")
            return
    saved_batch = getattr(bridge, "_fault_saved_batch", None) or {}
    for port in current.values():
        port.pair.rx.connect(
            lambda frame, p=port: bridge._ingress(p, frame))
        port.pair.rx._batch_handler = saved_batch.get(port.port_no)
    bridge._fault_saved = None
    bridge._fault_saved_batch = None


@dataclass
class MigrationRecord:
    tenant_id: int
    source: int
    target: int
    started_at: float
    completed_at: float

    @property
    def downtime(self) -> float:
        return self.completed_at - self.started_at


class MtsOrchestrator:
    """Lifecycle operations on a built MTS deployment."""

    def __init__(self, deployment: Deployment) -> None:
        if not deployment.spec.level.is_mts:
            raise ConfigurationError(
                "runtime tenant lifecycle requires an MTS deployment "
                "(the Baseline has no compartments to orchestrate)")
        self.deployment = deployment
        self._next_tenant = deployment.spec.num_tenants
        #: Live tenant -> compartment map, shared with the deployment so
        #: that dataplane addressing (ingress_dmac_for_tenant etc.)
        #: follows hot-adds and migrations.
        self.tenant_compartment: Dict[int, int] = deployment.runtime_compartment
        for t in range(deployment.spec.num_tenants):
            self.tenant_compartment[t] = deployment.spec.compartment_of_tenant(t)
        self.migrations: List[MigrationRecord] = []
        self._crashed: Dict[int, dict] = {}

    # -- queries ---------------------------------------------------------

    def tenants(self) -> List[int]:
        return sorted(self.tenant_compartment)

    def compartment_of(self, tenant_id: int) -> int:
        return self.tenant_compartment[tenant_id]

    def least_loaded_compartment(self) -> int:
        load: Dict[int, int] = {k: 0 for k in
                                range(len(self.deployment.vswitch_vms))}
        for compartment in self.tenant_compartment.values():
            load[compartment] += 1
        return min(load, key=lambda k: (load[k], k))

    # -- add -----------------------------------------------------------------

    def add_tenant(self, compartment: Optional[int] = None) -> int:
        """Provision a new tenant; returns its id."""
        d = self.deployment
        if compartment is None:
            compartment = self.least_loaded_compartment()
        if not 0 <= compartment < len(d.vswitch_vms):
            raise ConfigurationError(f"no compartment {compartment}")
        tenant = self._next_tenant
        self._next_tenant += 1

        vm = d.hypervisor.define_vm(VmSpec(
            name=f"tenant{tenant}", role=VmRole.TENANT, tenant_id=tenant,
            vcpus=d.spec.tenant_cores,
            memory_bytes=d.spec.vm_memory_bytes,
            hugepages_1g=d.spec.vm_hugepages_1g,
            pin_policy=PinPolicy.DEDICATED,
        ))
        d.hypervisor.start(vm)
        while len(d.tenant_vms) <= tenant:
            d.tenant_vms.append(None)  # type: ignore[arg-type]
        d.tenant_vms[tenant] = vm
        from repro.net.arp import ArpTable
        d.tenant_arp[tenant] = ArpTable()
        d.oplog.record("define-vm", vm.name, "runtime tenant add")

        self._provision_vfs(tenant, compartment, vm)
        self._install_l2fwd(tenant, vm)
        view = d.compartment_views[compartment]
        d.controller.program_single_tenant(view, tenant)
        self._install_filters(tenant, view)
        self._setup_arp(tenant, view)
        self.tenant_compartment[tenant] = compartment
        d.oplog.record("add-tenant", f"tenant{tenant}",
                       f"compartment {compartment}")
        return tenant

    def _provision_vfs(self, tenant: int, compartment: int, vm: Vm) -> None:
        d = self.deployment
        macs = d.plan  # address plan provides vlan; MACs from a fresh pool
        from repro.net.addresses import MacAllocator
        allocator = getattr(d, "_runtime_macs", None)
        if allocator is None:
            allocator = MacAllocator(prefix=0x02_4D_55)  # distinct pool
            d._runtime_macs = allocator  # type: ignore[attr-defined]
        vsw_vm = d.vswitch_vms[compartment]
        view = d.compartment_views[compartment]
        for p in range(d.spec.nic_ports):
            port = d.server.nic.port(p)
            gw = port.create_vf()
            port.configure_vf(gw, allocator.allocate(),
                              vlan=macs.vlan(tenant), spoof_check=False,
                              kind=FunctionKind.GATEWAY)
            d.hypervisor.attach_vf(vsw_vm, gw, p)
            d.gw_vf[(tenant, p)] = gw
            bridge_port = view.bridge.add_port(f"gw-t{tenant}-p{p}",
                                               PortClass.VF, gw.port)
            view.gw_port_no[(tenant, p)] = bridge_port.port_no
            view.gw_vf_mac[(tenant, p)] = gw.mac

            tvf = port.create_vf()
            port.configure_vf(tvf, allocator.allocate(),
                              vlan=macs.vlan(tenant), spoof_check=True,
                              kind=FunctionKind.TENANT)
            d.hypervisor.attach_vf(vm, tvf, p)
            d.tenant_vf[(tenant, p)] = tvf
            view.tenant_vf_mac[(tenant, p)] = tvf.mac
            d.oplog.record("create-vf", tvf.name,
                           f"runtime tenant{tenant} VF, port {p}")
        if tenant not in view.tenants:
            view.tenants.append(tenant)

    def _install_l2fwd(self, tenant: int, vm: Vm) -> None:
        d = self.deployment
        app = L2Fwd(name=f"tenant{tenant}.l2fwd", sim=d.sim,
                    freq_hz=d.calibration.cpu_freq_hz)
        indices = {p: app.add_port(d.tenant_vf[(tenant, p)].port)
                   for p in range(d.spec.nic_ports)}
        if d.spec.nic_ports == 1:
            app.set_route(indices[0], indices[0],
                          new_dst_mac=d.gw_vf[(tenant, 0)].mac,
                          new_src_mac=d.tenant_vf[(tenant, 0)].mac)
        else:
            app.set_route(indices[0], indices[1],
                          new_dst_mac=d.gw_vf[(tenant, 1)].mac,
                          new_src_mac=d.tenant_vf[(tenant, 1)].mac)
            app.set_route(indices[1], indices[0],
                          new_dst_mac=d.gw_vf[(tenant, 0)].mac,
                          new_src_mac=d.tenant_vf[(tenant, 0)].mac)
        vm.install_app("l2fwd", app)

    def _install_filters(self, tenant: int, view: CompartmentView) -> None:
        d = self.deployment
        from repro.net.addresses import BROADCAST_MAC
        for p in range(d.spec.nic_ports):
            vf = d.tenant_vf[(tenant, p)]
            d.server.nic.install_filter(WildcardFilter(
                action=FilterAction.ALLOW, priority=10, ingress_vf=vf.name,
                dst_mac=view.gw_vf_mac[(tenant, p)],
                name=f"allow-t{tenant}-gw-p{p}"))
            if d.spec.arp_mode is ArpMode.PROXY:
                d.server.nic.install_filter(WildcardFilter(
                    action=FilterAction.ALLOW, priority=10,
                    ingress_vf=vf.name, dst_mac=BROADCAST_MAC,
                    name=f"allow-t{tenant}-arp-p{p}"))
            d.server.nic.install_filter(WildcardFilter(
                action=FilterAction.DROP, priority=5, ingress_vf=vf.name,
                name=f"drop-t{tenant}-rest-p{p}"))

    def _setup_arp(self, tenant: int, view: CompartmentView) -> None:
        d = self.deployment
        if d.spec.arp_mode is ArpMode.STATIC:
            d.tenant_arp[tenant].add_static(
                d.plan.tenant_gw_ip(tenant), view.gw_vf_mac[(tenant, 0)])
        else:
            responder = d.controller.proxy_arp.get(view.index)
            if responder is not None:
                responder.install(d.plan.tenant_gw_ip(tenant),
                                  view.gw_vf_mac[(tenant, 0)])
                responder.install(d.plan.tenant_ip(tenant),
                                  view.tenant_vf_mac[(tenant, 0)])

    # -- remove -----------------------------------------------------------------

    def remove_tenant(self, tenant_id: int) -> None:
        """Withdraw a tenant completely (reverse of :meth:`add_tenant`)."""
        d = self.deployment
        compartment = self.tenant_compartment.pop(tenant_id, None)
        if compartment is None:
            raise ConfigurationError(f"no such tenant: {tenant_id}")
        view = d.compartment_views[compartment]
        d.controller.unprogram_tenant(view, tenant_id)
        self._remove_gateway(tenant_id, view)
        for p in range(d.spec.nic_ports):
            vf = d.tenant_vf.pop((tenant_id, p), None)
            if vf is not None:
                d.server.nic.port(p).destroy_vf(vf)
            view.tenant_vf_mac.pop((tenant_id, p), None)
            d.server.nic.filters.remove(f"allow-t{tenant_id}-gw-p{p}")
            d.server.nic.filters.remove(f"drop-t{tenant_id}-rest-p{p}")
        vm = d.tenant_vms[tenant_id]
        if vm is not None:
            d.hypervisor.undefine(vm)
            d.tenant_vms[tenant_id] = None  # type: ignore[call-overload]
        d.tenant_arp.pop(tenant_id, None)
        if tenant_id in view.tenants:
            view.tenants.remove(tenant_id)
        d.oplog.record("remove-tenant", f"tenant{tenant_id}", "")

    def _remove_gateway(self, tenant_id: int, view: CompartmentView) -> None:
        d = self.deployment
        for p in range(d.spec.nic_ports):
            port_no = view.gw_port_no.pop((tenant_id, p), None)
            if port_no is not None:
                view.bridge.del_port(port_no)
            gw = d.gw_vf.pop((tenant_id, p), None)
            if gw is not None:
                d.server.nic.port(p).destroy_vf(gw)
            view.gw_vf_mac.pop((tenant_id, p), None)

    # -- migrate -----------------------------------------------------------------

    def migrate_tenant(self, tenant_id: int, target: int) -> MigrationRecord:
        """Re-home a tenant's vswitch side to another compartment.

        The tenant VM and its VFs stay; the gateway VFs and flow rules
        move.  Connectivity is down while control-plane primitives run
        (SR-IOV has no live migration, §6); completion is scheduled on
        the simulator and the record carries the measured downtime.
        """
        d = self.deployment
        source = self.tenant_compartment.get(tenant_id)
        if source is None:
            raise ConfigurationError(f"no such tenant: {tenant_id}")
        if not 0 <= target < len(d.vswitch_vms):
            raise ConfigurationError(f"no compartment {target}")
        if target == source:
            raise ConfigurationError("tenant already lives there")

        started = d.sim.now
        source_view = d.compartment_views[source]
        # Connectivity drops now: withdraw rules and the old gateway.
        d.controller.unprogram_tenant(source_view, tenant_id)
        self._remove_gateway(tenant_id, source_view)
        if tenant_id in source_view.tenants:
            source_view.tenants.remove(tenant_id)

        # Control-plane work: 2 VF creations + 2 bridge ports + rules +
        # l2fwd re-route, per NIC port.
        ops = 3 * d.spec.nic_ports + 2
        downtime = ops * CONTROL_OP_LATENCY
        record = MigrationRecord(tenant_id=tenant_id, source=source,
                                 target=target, started_at=started,
                                 completed_at=started + downtime)
        # The chain is rewiring until completion lands: hold the
        # batched fast path onto the per-frame oracle for the window.
        from repro.faults import runtime as _chaos
        _chaos.lifecycle_begin()
        d.sim.call_later(downtime, self._complete_migration, tenant_id,
                         target)
        self.migrations.append(record)
        d.oplog.record("migrate-tenant", f"tenant{tenant_id}",
                       f"{source} -> {target}, downtime {downtime * 1e3:.0f} ms")
        return record

    def _complete_migration(self, tenant_id: int, target: int) -> None:
        d = self.deployment
        view = d.compartment_views[target]
        vsw_vm = d.vswitch_vms[target]
        from repro.net.addresses import MacAllocator
        allocator = getattr(d, "_runtime_macs", None)
        if allocator is None:
            allocator = MacAllocator(prefix=0x02_4D_55)
            d._runtime_macs = allocator  # type: ignore[attr-defined]
        for p in range(d.spec.nic_ports):
            port = d.server.nic.port(p)
            gw = port.create_vf()
            port.configure_vf(gw, allocator.allocate(),
                              vlan=d.plan.vlan(tenant_id), spoof_check=False,
                              kind=FunctionKind.GATEWAY)
            d.hypervisor.attach_vf(vsw_vm, gw, p)
            d.gw_vf[(tenant_id, p)] = gw
            bridge_port = view.bridge.add_port(f"gw-t{tenant_id}-p{p}",
                                               PortClass.VF, gw.port)
            view.gw_port_no[(tenant_id, p)] = bridge_port.port_no
            view.gw_vf_mac[(tenant_id, p)] = gw.mac
            view.tenant_vf_mac[(tenant_id, p)] = d.tenant_vf[(tenant_id, p)].mac
        view.tenants.append(tenant_id)
        d.controller.program_single_tenant(view, tenant_id)
        # Re-route the tenant's l2fwd at the new gateway MACs, and
        # refresh the spoof-check filters and the ARP binding.
        vm = d.tenant_vms[tenant_id]
        self._reroute_l2fwd(tenant_id, vm)
        for p in range(d.spec.nic_ports):
            d.server.nic.filters.remove(f"allow-t{tenant_id}-gw-p{p}")
            d.server.nic.filters.remove(f"drop-t{tenant_id}-rest-p{p}")
        self._install_filters(tenant_id, view)
        self._setup_arp(tenant_id, view)
        self.tenant_compartment[tenant_id] = target
        from repro.faults import runtime as _chaos
        _chaos.lifecycle_end()

    # -- fault injection ----------------------------------------------------

    def crash_compartment(self, k: int) -> None:
        """Kill a vswitch VM (fault-isolation experiments): frames for
        its tenants blackhole until :meth:`restart_compartment`."""
        d = self.deployment
        if k in self._crashed:
            raise ConfigurationError(f"compartment {k} already down")
        if not 0 <= k < len(d.vswitch_vms):
            raise ConfigurationError(f"no compartment {k}")
        self._crashed[k] = crash_bridge(d.bridges[k])
        d.hypervisor.stop(d.vswitch_vms[k])
        d.oplog.record("crash", f"vsw{k}", "fault injection")

    def restart_compartment(self, k: int) -> float:
        """Reboot a crashed vswitch VM; forwarding resumes after
        :data:`VSWITCH_RESTART_LATENCY` of simulated time.  Returns the
        completion timestamp."""
        d = self.deployment
        saved = self._crashed.pop(k, None)
        if saved is None:
            raise ConfigurationError(f"compartment {k} is not down")
        completes_at = d.sim.now + VSWITCH_RESTART_LATENCY

        def _up() -> None:
            restore_bridge(d.bridges[k], saved)
            d.vswitch_vms[k].state = d.vswitch_vms[k].state.__class__.RUNNING
            d.oplog.record("restart", f"vsw{k}", "recovered")

        d.sim.call_later(VSWITCH_RESTART_LATENCY, _up)
        return completes_at

    def is_down(self, k: int) -> bool:
        return k in self._crashed

    def _reroute_l2fwd(self, tenant_id: int, vm: Vm) -> None:
        d = self.deployment
        app: L2Fwd = vm.app("l2fwd")
        if d.spec.nic_ports == 1:
            app.set_route(0, 0, new_dst_mac=d.gw_vf[(tenant_id, 0)].mac,
                          new_src_mac=d.tenant_vf[(tenant_id, 0)].mac)
        else:
            app.set_route(0, 1, new_dst_mac=d.gw_vf[(tenant_id, 1)].mac,
                          new_src_mac=d.tenant_vf[(tenant_id, 1)].mac)
            app.set_route(1, 0, new_dst_mac=d.gw_vf[(tenant_id, 0)].mac,
                          new_src_mac=d.tenant_vf[(tenant_id, 0)].mac)
