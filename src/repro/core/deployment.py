"""Build runnable deployments from specs.

``build_deployment(spec, scenario)`` assembles, on a simulated server,
everything the paper's framework sets up on real hardware:

- VMs (vswitch compartments and tenants) with pinned cores, RAM and
  hugepages per the spec's resource mode;
- SR-IOV VFs, configured with MACs, per-tenant VLAN tags and
  anti-spoofing, attached to their VMs (MTS), or virtio/vhost paths
  (Baseline);
- an OVS-like bridge per compartment (or the host-resident Baseline
  bridge), kernel or DPDK datapath per the spec;
- tenant-side apps: the adapted DPDK l2fwd (MTS) or a Linux bridge
  (Baseline);
- the controller-programmed flow rules, ARP entries and NIC filters.

Every step lands in the deployment's :class:`~repro.core.primitives.OpLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.core.controller import AddressPlan, BaselineView, CompartmentView, Controller
from repro.core.levels import ResourceMode
from repro.core.primitives import OpLog
from repro.core.resources import ResourceReport, measure_resources
from repro.core.spec import ArpMode, CompartmentKind, DeploymentSpec, TrafficScenario
from repro.host.hypervisor import Hypervisor, PinPolicy, VmSpec
from repro.host.server import Server
from repro.host.virtio import VhostCosts, VhostPath
from repro.host.vm import Vm, VmRole
from repro.net.addresses import MacAddress, MacAllocator
from repro.net.arp import ArpTable
from repro.net.interfaces import Port, PortPair
from repro.net.link import Link
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.sriov.vf import FunctionKind, VirtualFunction
from repro.units import GIB, MIB
from repro.vswitch.datapath import DatapathMode, PortClass
from repro.vswitch.l2fwd import L2Fwd
from repro.vswitch.linux_bridge import LinuxBridge
from repro.vswitch.megaflow import (
    DPDK_UPCALL_CYCLES,
    KERNEL_UPCALL_CYCLES,
    MegaflowCache,
)
from repro.vswitch.ovs import OvsBridge

_INF = float("inf")

#: Negative route-cache entry: fusing was tried and is impossible for
#: this plan until the next config-epoch bump.
_NO_FUSE = object()


@dataclass
class Deployment:
    """A built, runnable configuration."""

    spec: DeploymentSpec
    scenario: TrafficScenario
    sim: Simulator
    server: Server
    hypervisor: Hypervisor
    calibration: Calibration
    controller: Controller
    oplog: OpLog
    plan: AddressPlan
    vswitch_vms: List[Vm] = field(default_factory=list)
    tenant_vms: List[Vm] = field(default_factory=list)
    bridges: List[OvsBridge] = field(default_factory=list)
    compartment_views: List[CompartmentView] = field(default_factory=list)
    baseline_view: Optional[BaselineView] = None
    tenant_arp: Dict[int, ArpTable] = field(default_factory=dict)
    # MTS wiring maps
    inout_vf: Dict[Tuple[int, int], VirtualFunction] = field(default_factory=dict)
    gw_vf: Dict[Tuple[int, int], VirtualFunction] = field(default_factory=dict)
    tenant_vf: Dict[Tuple[int, int], VirtualFunction] = field(default_factory=dict)
    # Baseline wiring
    phys_pairs: Dict[int, PortPair] = field(default_factory=dict)
    vhost_paths: Dict[Tuple[int, int], VhostPath] = field(default_factory=dict)
    #: Runtime tenant -> compartment overrides (hot-added or migrated
    #: tenants); consulted before the spec's static assignment.
    runtime_compartment: Dict[int, int] = field(default_factory=dict)

    # -- traffic attachment -------------------------------------------------

    def external_ingress(self, port_index: int = 0) -> Port:
        """Where the load generator's link delivers frames."""
        if self.spec.level.is_mts:
            return self.server.nic.port(port_index).fabric_rx
        return self.phys_pairs[port_index].rx

    def connect_egress(self, port_index: int, link: Link) -> None:
        """Attach the outbound wire towards the sink/monitor."""
        if self.spec.level.is_mts:
            self.server.nic.port(port_index).connect_fabric(link)
        else:
            self.phys_pairs[port_index].attach_tx(link.send)

    def egress_port_index(self) -> int:
        """NIC port test traffic leaves on (1 on two-port runs)."""
        return 0 if self.spec.nic_ports == 1 else 1

    def ingress_dmac_for_tenant(self, tenant_id: int,
                                port_index: int = 0) -> MacAddress:
        """Destination MAC the load generator must use so the NIC's VEB
        delivers the flow to the right compartment (MTS) -- or anything
        bridge-local for the Baseline."""
        if self.spec.level.is_mts:
            k = self.compartment_of_tenant(tenant_id)
            mac = self.inout_vf[(k, port_index)].mac
            assert mac is not None
            return mac
        return self.plan.external_gw_mac

    # -- structure accessors -------------------------------------------------

    def compartment_of_tenant(self, tenant_id: int) -> int:
        if tenant_id in self.runtime_compartment:
            return self.runtime_compartment[tenant_id]
        return self.spec.compartment_of_tenant(tenant_id)

    def bridge_of_tenant(self, tenant_id: int) -> OvsBridge:
        if not self.spec.level.is_mts:
            return self.bridges[0]
        return self.bridges[self.compartment_of_tenant(tenant_id)]

    def tenant_vm(self, tenant_id: int) -> Vm:
        return self.tenant_vms[tenant_id]

    def set_offered_rate_hint(self, pps: float) -> None:
        """Tell datapaths the aggregate offered rate (for the DPDK
        multi-queue drain-anomaly model)."""
        for bridge in self.bridges:
            if bridge.model is not None:
                bridge.model.offered_rate_hint_pps = pps

    # -- batched fast path ----------------------------------------------------

    def supports_batched_fastpath(self) -> bool:
        """Whether the mediation chain can run struct-of-arrays batches.

        Only timed bridges (``set_compute`` done) gain anything; the
        per-member fallback in :meth:`~repro.net.interfaces.Port.receive_batch`
        keeps unconverted hops exact, so any deployment *could* run
        batched -- but without stations the bridge would fall back
        per-frame anyway, so report capability honestly.
        """
        return any(bridge.model is not None and bridge.compute_shares
                   for bridge in self.bridges)

    def enable_batched_fastpath(self) -> None:
        """Swap every timed bridge onto :class:`BatchFairStation` cores.

        Each bridge gets a *margin resolver*: per forwarding plan, a
        lower bound on the transit time from bridge egress to the next
        timestamp-sensitive point in the chain (see
        :meth:`_plan_flush_margin`).  Fabric-bound plans resolve to
        ``inf`` -- their sub-batches flush once per burst -- which is
        what makes the batched path pay at saturation.
        """
        self._margin_cache = {}
        self._route_cache = {}
        self._margin_epoch = None
        # Fused routes assume the chain's wiring is stable for the run;
        # a pending fault plan (bridge crashes/restarts) breaks that, so
        # such runs keep the margin-flush path everywhere.
        from repro.faults import runtime as _chaos
        self._allow_fused = not _chaos.chaos_pending()
        # Bridge egress pair -> (nic port, VF) so the resolver can walk
        # the same VEB the flushed frames will traverse.
        pair_vf: Dict[int, tuple] = {}
        nic = self.server.nic
        for table in (self.inout_vf, self.gw_vf, self.tenant_vf):
            for (_, port_index), vf in table.items():
                pair_vf[id(vf.port)] = (nic.port(port_index), vf)
        self._pair_vf = pair_vf
        timed = [bridge for bridge in self.bridges
                 if bridge.model is not None and bridge.compute_shares]
        self._bridge_pair_ids = {
            id(port.pair) for bridge in timed for port in bridge.ports()}
        self._bridge_port_by_pair = {
            id(port.pair): (bridge, port)
            for bridge in timed for port in bridge.ports()}
        # Tenant-forwarder rx pair -> (app, port index): route discovery
        # follows the chain through the adapted l2fwd analytically.
        l2fwd_by_pair: Dict[int, tuple] = {}
        for vm in self.tenant_vms:
            if vm is None:
                continue
            app = vm.apps.get("l2fwd")
            if app is None:
                continue
            for index, pair in app._ports.items():
                l2fwd_by_pair[id(pair)] = (app, index)
        self._l2fwd_by_pair = l2fwd_by_pair
        for bridge in timed:
            bridge.set_batch_stations(
                margin_fn=lambda plan, b=bridge:
                    self._resolve_plan(b, plan))

    def drain_batches(self) -> None:
        """Flush sub-batches still held by batch stations.

        Scheduled by the harness once traffic has stopped (mid-cooldown)
        so unbounded-margin groups whose bursts never completed -- tail
        members still pending when the generator stopped -- reach the
        sink before the simulation ends.
        """
        for bridge in self.bridges:
            for station in bridge._stations:
                drain = getattr(station, "drain", None)
                if drain is not None:
                    drain()

    def _plan_flush_margin(self, bridge: OvsBridge, plan) -> float:
        """Flush-lateness bound for one forwarding plan (see
        :class:`~repro.sim.resources.BatchFairStation`).

        Walks each egress VF's VEB decision for the plan's (already
        rewritten) exemplar header and takes the minimum transit floor
        over every reachable admission point:

        - fabric uplink: the remaining chain (wire occupancy, taps,
          sink) is analytic in member timestamps -- no bound (``inf``);
        - another mediation-bridge VF, or any receiver without a batch
          handler (whose fallback schedules per-member events at their
          timestamps): two PCIe DMAs + the VEB hop;
        - a batched tenant app that may forward back into the chain:
          four DMAs + two VEB hops (its re-entry into the NIC is the
          earliest following admission point);
        - a rate-limited egress VF: 0 -- the policer is stateful in
          per-frame arrival times, so flush at every finish wake.

        Results are memoized per (bridge, header, egress set) and
        revalidated against the VEB/policer config epochs.
        """
        from repro.sriov.nic import VEB_LATENCY
        from repro.sriov.pcie import DMA_LATENCY
        from repro.sriov.switch import UPLINK, VebSwitch
        self._check_epochs()
        frame = plan.frame
        key = (id(bridge), plan.in_port, frame.src_mac, frame.dst_mac,
               frame.vlan, tuple(plan.out_ports))
        cached = self._margin_cache.get(key)
        if cached is not None:
            return cached
        bridge_hop = 2 * DMA_LATENCY + VEB_LATENCY
        tenant_hop = 4 * DMA_LATENCY + 2 * VEB_LATENCY
        margin = float("inf")
        for port_no in plan.out_ports:
            port = bridge._ports.get(port_no)
            if port is None:
                continue
            entry = self._pair_vf.get(id(port.pair))
            if entry is None:
                # Egress we cannot classify (e.g. a vhost path): no
                # slack assumed, flush at every wake.
                margin = 0.0
                break
            nic_port, vf = entry
            if nic_port._buckets.get(vf.name) is not None:
                margin = 0.0
                break
            dests = nic_port.veb.peek_destinations(
                vf.name, VebSwitch.domain_of(vf), frame)
            for dest in dests:
                if dest == UPLINK:
                    continue
                func = nic_port._functions.get(dest)
                if func is None:
                    continue
                if (id(func.port) in self._bridge_pair_ids
                        or func.port.rx._batch_handler is None
                        or nic_port._buckets.get(dest) is not None):
                    margin = min(margin, bridge_hop)
                else:
                    margin = min(margin, tenant_hop)
        self._margin_cache[key] = margin
        return margin

    def _check_epochs(self) -> None:
        """Invalidate cached margins/routes when NIC config changed."""
        nic = self.server.nic
        epoch = (tuple((p.veb.epoch, p.policer_epoch) for p in nic.ports),
                 nic.filters.epoch)
        if epoch != self._margin_epoch:
            self._margin_cache.clear()
            self._route_cache.clear()
            self._margin_epoch = epoch

    def _resolve_plan(self, bridge: OvsBridge, plan):
        """Margin resolver with route fusing (the bridge's margin_fn).

        Returns either a flush-lateness bound (float, see
        :meth:`_plan_flush_margin`) or a
        :class:`~repro.vswitch.ovs._FusedRoute` when the plan's egress
        leads deterministically to another batch station: the bridge
        then pre-registers members downstream on commit instead of
        margin-flushing tiny sub-batches through the physical chain.
        """
        margin = self._plan_flush_margin(bridge, plan)
        if margin == _INF or not self._allow_fused:
            return margin
        frame = plan.frame
        key = (id(bridge), plan.in_port, frame.src_mac, frame.dst_mac,
               frame.vlan, tuple(plan.out_ports))
        route = self._route_cache.get(key)
        if route is not None:
            if route is _NO_FUSE:
                return margin
            bridge2 = route.bridge
            if (bridge2._plan_cache.get(route.template_key)
                    is route.template
                    and len(bridge2._ports) == route.num_ports
                    and (route.flow_key is None
                         or route.flow_key in bridge2.cache._entries)
                    and (route.app is None
                         or route.app.epoch == route.app_epoch)):
                return route
            del self._route_cache[key]
        route, retryable = self._discover_route(bridge, plan)
        if route is not None:
            self._route_cache[key] = route
            return route
        if not retryable:
            # A cold downstream template/flow cache warms up within the
            # flow's first bursts; every other failure is config-stable
            # until an epoch bump, so the negative result is cacheable.
            self._route_cache[key] = _NO_FUSE
        return margin

    def _discover_route(self, bridge: OvsBridge, plan):
        """Walk a plan's egress chain; build a fused route if it is
        deterministic all the way to the next batch station.

        Requirements, checked leg by leg (NIC VF ingress -> VEB -> PCIe
        -> receiver, with at most one jittered tenant forwarder):
        single egress; every hop batch-capable; no policer buckets; NIC
        filters/spoof-check pass; VEB decision is a single non-uplink
        function; the terminal bridge holds a warm, non-dropping,
        single-egress plan template (and megaflow entry) for the
        arriving header, and that template's own egress resolves to an
        unbounded margin (fabric-bound -- so the downstream station is
        the *last* timestamp-sensitive point).  Returns
        ``(route | None, retryable)``.
        """
        from repro.sim.hashjit import HashJitter
        from repro.sriov.filters import FilterAction, SpoofCheck
        from repro.sriov.nic import VEB_LATENCY
        from repro.sriov.pcie import DMA_LATENCY
        from repro.sriov.switch import UPLINK, VebSwitch
        from repro.vswitch.megaflow import emc_signature, flow_signature
        from repro.vswitch.ovs import _APPLY, _ForwardPlan, _FusedRoute
        if len(plan.out_ports) != 1:
            return None, False
        out_port = bridge._ports.get(plan.out_ports[0])
        if out_port is None:
            return None, False
        nic = self.server.nic
        filters = nic.filters
        bw = nic.pcie.effective_bandwidth_bps()
        frame = plan.frame.replica()
        delay = 0.0
        app = None
        pair = out_port.pair
        target = None
        for _hop in range(4):
            if pair._tx_batch is None:
                return None, False
            entry = self._pair_vf.get(id(pair))
            if entry is None:
                return None, False
            nic_port, vf = entry
            if vf.mac is None or not SpoofCheck.permits(vf, frame):
                return None, False
            if nic_port._buckets.get(vf.name) is not None:
                return None, False
            if filters.peek(vf, frame) is not FilterAction.ALLOW:
                return None, False
            delay += (DMA_LATENCY + frame.wire_size() * 8.0 / bw
                      + VEB_LATENCY)
            dests = nic_port.veb.peek_destinations(
                vf.name, VebSwitch.domain_of(vf), frame)
            if len(dests) != 1 or dests[0] == UPLINK:
                return None, False
            func = nic_port._functions.get(dests[0])
            if func is None or func.port.rx._batch_handler is None:
                return None, False
            if frame.vlan is not None:
                frame.pop_vlan()
            delay += DMA_LATENCY + frame.wire_size() * 8.0 / bw
            target = self._bridge_port_by_pair.get(id(func.port))
            if target is not None:
                break
            linfo = self._l2fwd_by_pair.get(id(func.port))
            if linfo is None or app is not None:
                return None, False
            app, in_index = linfo
            route_l2 = app._routes.get(in_index)
            if route_l2 is None:
                return None, False
            from repro.vswitch.l2fwd import L2FWD_CYCLES
            delay += L2FWD_CYCLES / app.freq_hz
            frame.dst_mac = route_l2.new_dst_mac
            if route_l2.new_src_mac is not None:
                frame.src_mac = route_l2.new_src_mac
            pair = app._ports[route_l2.out_index]
        if target is None:
            return None, False
        bridge2, port2 = target
        if not bridge2._batch_mode or not bridge2._stations:
            return None, False
        key2 = emc_signature(frame, port2.port_no)
        template = bridge2._plan_cache.get(key2)
        if template is None:
            return None, True  # warms up with the flow's first bursts
        if template.dropped or len(template.out_ports) != 1:
            return None, False
        frame3 = frame.replica()
        for op, action, _rule in template.steps:
            if op == _APPLY:
                action.apply(frame3)
        flow_key = None
        if bridge2.cache is not None:
            # The microflow lookup happens post-replay, so the entry is
            # keyed on the pass's *output* header.
            flow_key = flow_signature(frame3, port2.port_no)
            if flow_key not in bridge2.cache._entries:
                return None, True
        plan2 = _ForwardPlan(frame=frame3, in_port=port2.port_no,
                             out_ports=list(template.out_ports),
                             rewrites=template.rewrites)
        if self._plan_flush_margin(bridge2, plan2) != _INF:
            return None, False
        index2 = frame.flow_id % len(bridge2._stations)
        route = _FusedRoute()
        route.delay_const = delay
        route.drain_interval = app.drain_interval if app is not None else 0.0
        route.drain_unit = app._jitter.unit if app is not None else None
        route.drain_site = HashJitter.SITE_L2FWD_DRAIN
        route.app = app
        route.app_epoch = app.epoch if app is not None else 0
        route.bridge = bridge2
        route.in_port_no = port2.port_no
        route.template = template
        route.template_key = key2
        route.flow_key = flow_key
        route.out_ports = list(template.out_ports)
        route.model = bridge2.model
        route.share = bridge2._shares[index2]
        route.num_queues = len(bridge2._stations)
        route.num_ports = len(bridge2._ports)
        route.jitter = bridge2._jitter
        route.key_or = port2.port_no & 63
        route.station = bridge2._stations[index2]
        route.cycles = bridge2.model.pass_cycles(
            port2.port_class,
            bridge2._ports[template.out_ports[0]].port_class,
            template.rewrites, num_ports=len(bridge2._ports))
        return route, False

    def resource_report(self) -> ResourceReport:
        return measure_resources(self.server, self.spec.label)

    def describe(self) -> str:
        lines = [
            f"deployment {self.spec.label} scenario={self.scenario.value} "
            f"mode={self.spec.resource_mode.value}",
            self.server.describe(),
            f"ops: {self.oplog.summary()}",
        ]
        return "\n".join(lines)

    def teardown(self) -> None:
        """Undefine all VMs and release VFs (reverse of the build)."""
        for vm in list(self.tenant_vms) + list(self.vswitch_vms):
            self.hypervisor.undefine(vm)
        for port in self.server.nic.ports:
            port.detach_all()
        for core in self.server.cores.cores:
            for consumer in list(core.consumers):
                if consumer.startswith("ovs."):
                    self.server.cores.release(consumer)
        self.server.memory.release("ovs-dpdk")
        self.tenant_vms.clear()
        self.vswitch_vms.clear()
        self.oplog.record("teardown", "deployment", "all VMs undefined, VFs freed")


def plan_deployment(spec: DeploymentSpec,
                    scenario: TrafficScenario = TrafficScenario.P2V) -> OpLog:
    """Dry-run: the primitive operations a spec expands to."""
    deployment = build_deployment(spec, scenario)
    return deployment.oplog


def build_deployment(
    spec: DeploymentSpec,
    scenario: TrafficScenario = TrafficScenario.P2V,
    sim: Optional[Simulator] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    server: Optional[Server] = None,
    site_id: int = 0,
) -> Deployment:
    """Assemble a deployment for ``spec`` under ``scenario``.

    ``site_id`` distinguishes servers in a multi-server cloud: it
    offsets the tenant subnets, VNIs, and the MAC pool so two servers'
    deployments never collide on the fabric.
    """
    spec.validate_scenario(scenario)
    builder = _Builder(spec, scenario, sim, calibration, seed, server,
                       site_id)
    return builder.build()


class _Builder:
    def __init__(self, spec, scenario, sim, calibration, seed, server,
                 site_id=0):
        self.spec: DeploymentSpec = spec
        self.scenario: TrafficScenario = scenario
        self.sim = sim if sim is not None else Simulator()
        self.calibration: Calibration = calibration
        self.rng = RngStreams(seed)
        self.server = server if server is not None else Server(
            self.sim, freq_hz=calibration.cpu_freq_hz,
            name=f"dut{site_id}" if site_id else "dut",
        )
        self.hypervisor = Hypervisor(self.server)
        self.macs = MacAllocator(prefix=0x024D54 + (site_id << 8))
        self.oplog = OpLog()
        self.plan = AddressPlan(external_gw_mac=self.macs.allocate(),
                                vni_base=spec.tunnel_vni_base,
                                site_id=site_id)
        self.controller = Controller(self.plan, nic_ports=spec.nic_ports,
                                     tunneling=spec.tunneling,
                                     multi_table=spec.multi_table)

    # -- entry point ---------------------------------------------------------

    def build(self) -> Deployment:
        d = Deployment(
            spec=self.spec, scenario=self.scenario, sim=self.sim,
            server=self.server, hypervisor=self.hypervisor,
            calibration=self.calibration, controller=self.controller,
            oplog=self.oplog, plan=self.plan,
        )
        if self.spec.level.is_mts:
            self._build_mts(d)
        else:
            self._build_baseline(d)
        self.oplog.record("program-flows", "controller",
                          f"{self.controller.rules_installed} rules for "
                          f"{self.scenario.value}")
        _obs.on_deployment_built(d)
        return d

    # -- common pieces ---------------------------------------------------------

    def _dpdk_mode(self) -> DatapathMode:
        return DatapathMode.DPDK if self.spec.user_space else DatapathMode.KERNEL

    def _bridge_costs(self):
        return (self.calibration.dpdk_costs if self.spec.user_space
                else self.calibration.kernel_costs)

    def _flow_cache(self) -> MegaflowCache:
        """Every OVS-style datapath fronts its pipeline with a flow
        cache whose misses upcall to the slow path."""
        upcall = (DPDK_UPCALL_CYCLES if self.spec.user_space
                  else KERNEL_UPCALL_CYCLES)
        return MegaflowCache(upcall_cycles=upcall)

    def _define_tenant_vms(self, d: Deployment) -> None:
        for t in range(self.spec.num_tenants):
            vm_spec = VmSpec(
                name=f"tenant{t}", role=VmRole.TENANT, tenant_id=t,
                vcpus=self.spec.tenant_cores,
                memory_bytes=self.spec.vm_memory_bytes,
                hugepages_1g=self.spec.vm_hugepages_1g,
                pin_policy=PinPolicy.DEDICATED,
            )
            vm = self.hypervisor.define_vm(vm_spec)
            self.hypervisor.start(vm)
            d.tenant_vms.append(vm)
            d.tenant_arp[t] = ArpTable()
            self.oplog.record("define-vm", vm.name,
                              f"{vm_spec.vcpus} cores, 4 GiB, 1 hugepage")

    # -- MTS -------------------------------------------------------------------

    def _build_mts(self, d: Deployment) -> None:
        spec = self.spec
        self._define_vswitch_vms(d)
        self._define_tenant_vms(d)
        self._create_mts_vfs(d)
        self._build_compartment_bridges(d)
        self._install_tenant_l2fwd(d)
        tenant_vf_names = {key: vf.name for key, vf in d.tenant_vf.items()}
        for view in d.compartment_views:
            self.controller.program_compartment(view, self.scenario)
            self.controller.setup_arp(spec.arp_mode, view, d.tenant_arp)
            self.controller.install_nic_filters(
                self.server.nic, view, tenant_vf_names,
                allow_broadcast_arp=spec.arp_mode is ArpMode.PROXY)
        self.oplog.record("install-filters", "nic",
                          f"{len(self.server.nic.filters)} wildcard filters, "
                          "spoof-check on all tenant VFs")

    def _define_vswitch_vms(self, d: Deployment) -> None:
        spec = self.spec
        shared = spec.resource_mode is ResourceMode.SHARED
        containerized = spec.compartment_kind is CompartmentKind.CONTAINER
        for k in range(spec.num_compartments):
            if containerized:
                # No guest OS: a fraction of the memory, and a hugepage
                # only when the DPDK datapath needs one.
                memory = 512 * MIB
                hugepages = 1 if spec.user_space else 0
                memory = max(memory, hugepages * GIB)
            else:
                memory = spec.vm_memory_bytes
                hugepages = spec.vm_hugepages_1g
            dedicated = (not shared) or k in spec.premium_compartments
            vm_spec = VmSpec(
                name=f"vsw{k}", role=VmRole.VSWITCH,
                vcpus=1,
                memory_bytes=memory,
                hugepages_1g=hugepages,
                pin_policy=(PinPolicy.DEDICATED if dedicated
                            else PinPolicy.SHARED),
            )
            vm = self.hypervisor.define_vm(vm_spec)
            self.hypervisor.start(vm)
            d.vswitch_vms.append(vm)
            self.oplog.record(
                "define-vm" if not containerized else "define-container",
                vm.name,
                f"vswitch compartment, {'shared core' if shared else 'dedicated core'}"
            )

    def _create_mts_vfs(self, d: Deployment) -> None:
        spec = self.spec
        nic = self.server.nic
        for k in range(spec.num_compartments):
            vsw_vm = d.vswitch_vms[k]
            for p in range(spec.nic_ports):
                vf = nic.port(p).create_vf()
                nic.port(p).configure_vf(vf, self.macs.allocate(), vlan=None,
                                         spoof_check=False,
                                         kind=FunctionKind.IN_OUT)
                self.hypervisor.attach_vf(vsw_vm, vf, p)
                d.inout_vf[(k, p)] = vf
                self.oplog.record("create-vf", vf.name,
                                  f"In/Out for {vsw_vm.name}, untagged")
            for t in spec.tenants_of_compartment(k):
                for p in range(spec.nic_ports):
                    gw = nic.port(p).create_vf()
                    nic.port(p).configure_vf(gw, self.macs.allocate(),
                                             vlan=self.plan.vlan(t),
                                             spoof_check=False,
                                             kind=FunctionKind.GATEWAY)
                    self.hypervisor.attach_vf(vsw_vm, gw, p)
                    d.gw_vf[(t, p)] = gw
                    self.oplog.record(
                        "create-vf", gw.name,
                        f"Gw for tenant{t} on {vsw_vm.name}, vlan {self.plan.vlan(t)}"
                    )
        for t in range(spec.num_tenants):
            tenant_vm = d.tenant_vms[t]
            for p in range(spec.nic_ports):
                vf = nic.port(p).create_vf()
                nic.port(p).configure_vf(vf, self.macs.allocate(),
                                         vlan=self.plan.vlan(t),
                                         spoof_check=True,
                                         kind=FunctionKind.TENANT)
                self.hypervisor.attach_vf(tenant_vm, vf, p)
                d.tenant_vf[(t, p)] = vf
                self.oplog.record(
                    "create-vf", vf.name,
                    f"tenant{t} VF, vlan {self.plan.vlan(t)}, spoof-check on"
                )

    def _build_compartment_bridges(self, d: Deployment) -> None:
        spec = self.spec
        for k in range(spec.num_compartments):
            vm = d.vswitch_vms[k]
            bridge = OvsBridge(
                name=f"vsw{k}.br0",
                mode=self._dpdk_mode(),
                sim=self.sim,
                costs=self._bridge_costs(),
                rng=self.rng.stream(f"bridge.vsw{k}"),
                cache=self._flow_cache(),
            )
            vm.install_app("bridge", bridge)
            inout_port_no: Dict[int, int] = {}
            gw_port_no: Dict[Tuple[int, int], int] = {}
            for p in range(spec.nic_ports):
                port = bridge.add_port(f"inout{p}", PortClass.VF,
                                       d.inout_vf[(k, p)].port)
                inout_port_no[p] = port.port_no
                self.oplog.record("add-port", f"vsw{k}.br0",
                                  f"inout{p} <- {d.inout_vf[(k, p)].name}")
            for t in spec.tenants_of_compartment(k):
                for p in range(spec.nic_ports):
                    port = bridge.add_port(f"gw-t{t}-p{p}", PortClass.VF,
                                           d.gw_vf[(t, p)].port)
                    gw_port_no[(t, p)] = port.port_no
                    self.oplog.record("add-port", f"vsw{k}.br0",
                                      f"gw-t{t}-p{p} <- {d.gw_vf[(t, p)].name}")
            bridge.set_compute(vm.compute)
            d.bridges.append(bridge)
            d.compartment_views.append(CompartmentView(
                index=k,
                bridge=bridge,
                tenants=spec.tenants_of_compartment(k),
                inout_port_no=inout_port_no,
                gw_port_no=gw_port_no,
                tenant_vf_mac={
                    (t, p): d.tenant_vf[(t, p)].mac
                    for t in spec.tenants_of_compartment(k)
                    for p in range(spec.nic_ports)
                },
                gw_vf_mac={
                    (t, p): d.gw_vf[(t, p)].mac
                    for t in spec.tenants_of_compartment(k)
                    for p in range(spec.nic_ports)
                },
            ))

    def _install_tenant_l2fwd(self, d: Deployment) -> None:
        """MTS tenants run the adapted DPDK l2fwd: bounce rx on one VF out
        the other, rewriting dst MAC to the gateway VF (and src MAC to the
        egress VF, passing the NIC's spoof check)."""
        spec = self.spec
        for t in range(spec.num_tenants):
            vm = d.tenant_vms[t]
            app = L2Fwd(name=f"tenant{t}.l2fwd", sim=self.sim,
                        freq_hz=self.calibration.cpu_freq_hz,
                        rng=self.rng.stream(f"l2fwd.t{t}"))
            vm.install_app("l2fwd", app)
            indices = {}
            for p in range(spec.nic_ports):
                indices[p] = app.add_port(d.tenant_vf[(t, p)].port)
            if spec.nic_ports == 1:
                app.set_route(indices[0], indices[0],
                              new_dst_mac=d.gw_vf[(t, 0)].mac,
                              new_src_mac=d.tenant_vf[(t, 0)].mac)
            else:
                app.set_route(indices[0], indices[1],
                              new_dst_mac=d.gw_vf[(t, 1)].mac,
                              new_src_mac=d.tenant_vf[(t, 1)].mac)
                app.set_route(indices[1], indices[0],
                              new_dst_mac=d.gw_vf[(t, 0)].mac,
                              new_src_mac=d.tenant_vf[(t, 0)].mac)
            self.oplog.record("install-app", vm.name,
                              "adapted DPDK l2fwd (dst-MAC rewrite)")

    # -- Baseline ----------------------------------------------------------------

    def _build_baseline(self, d: Deployment) -> None:
        spec = self.spec
        self._define_tenant_vms(d)
        bridge = OvsBridge(
            name="host.br0",
            mode=self._dpdk_mode(),
            sim=self.sim,
            costs=self._bridge_costs(),
            rng=self.rng.stream("bridge.host"),
            cache=self._flow_cache(),
        )
        d.bridges.append(bridge)

        shares = []
        if not spec.user_space:
            # The kernel Baseline's first forwarding context shares the
            # Host OS core (the paper's single-core Baseline consumes 1
            # core total; N-core Baselines consume N, so MTS is always
            # "one extra physical core relative to the Baseline").
            shares.append(self.server.cores.allocate_host_share("ovs.pmd0"))
            for i in range(1, spec.baseline_cores):
                shares.append(self.server.cores.allocate_dedicated(f"ovs.pmd{i}"))
            self.oplog.record(
                "pin-cores", "host.br0",
                f"host core + {spec.baseline_cores - 1} dedicated")
        else:
            # DPDK busy-polls: every PMD needs its own core.
            for i in range(spec.baseline_cores):
                shares.append(self.server.cores.allocate_dedicated(f"ovs.pmd{i}"))
            self.oplog.record("pin-cores", "host.br0",
                              f"{spec.baseline_cores} dedicated PMD cores")
        if spec.user_space:
            # Proportional hugepages for OVS-DPDK (paper: "a proportional
            # amount of Huge pages was allocated").
            self.server.memory.allocate("ovs-dpdk",
                                        ram_bytes=spec.baseline_cores * GIB,
                                        hugepages_1g=spec.baseline_cores)
            self.oplog.record("alloc-hugepages", "ovs-dpdk",
                              f"{spec.baseline_cores} x 1 GiB")

        phys_port_no: Dict[int, int] = {}
        for p in range(spec.nic_ports):
            pair = PortPair(f"host.phys{p}")
            d.phys_pairs[p] = pair
            port = bridge.add_port(f"phys{p}", PortClass.PHYSICAL, pair)
            phys_port_no[p] = port.port_no
            self.oplog.record("add-port", "host.br0", f"phys{p}")

        tenant_class = (PortClass.DPDK_VHOST_CLIENT if spec.user_space
                        else PortClass.VHOST)
        vhost_port_no: Dict[Tuple[int, int], int] = {}
        vhost_costs = VhostCosts(
            latency=(self.calibration.vhost_user_latency if spec.user_space
                     else self.calibration.vhost_latency))
        # Baseline tenants always get two paravirtual interfaces (in/out),
        # regardless of how many physical ports the run uses.
        sides = range(2)
        for t in range(spec.num_tenants):
            for side in sides:
                path = VhostPath(self.sim, f"vhost-t{t}-{side}", costs=vhost_costs)
                d.vhost_paths[(t, side)] = path
                port = bridge.add_port(f"vhost-t{t}-{side}", tenant_class,
                                       path.host_side)
                vhost_port_no[(t, side)] = port.port_no
                self.oplog.record("add-port", "host.br0",
                                  f"vhost-t{t}-{side} ({tenant_class.value})")
        bridge.set_compute(shares)

        self._install_tenant_baseline_apps(d)
        d.baseline_view = BaselineView(
            bridge=bridge,
            tenants=list(range(spec.num_tenants)),
            phys_port_no=phys_port_no,
            vhost_port_no=vhost_port_no,
        )
        self.controller.program_baseline(d.baseline_view, self.scenario)

    def _install_tenant_baseline_apps(self, d: Deployment) -> None:
        """Baseline tenants forward with the default Linux bridge (kernel
        runs) or DPDK l2fwd over dpdkvhostuserclient ports (Level-3)."""
        spec = self.spec
        for t in range(spec.num_tenants):
            vm = d.tenant_vms[t]
            sides = [0, 1]
            if spec.user_space:
                app = L2Fwd(name=f"tenant{t}.l2fwd", sim=self.sim,
                            freq_hz=self.calibration.cpu_freq_hz,
                            rng=self.rng.stream(f"l2fwd.t{t}"))
                indices = {s: app.add_port(d.vhost_paths[(t, s)].guest_side)
                           for s in sides}
                if len(sides) == 1:
                    app.set_route(indices[0], indices[0],
                                  new_dst_mac=self.plan.external_gw_mac)
                else:
                    app.set_route(indices[0], indices[1],
                                  new_dst_mac=self.plan.external_gw_mac)
                    app.set_route(indices[1], indices[0],
                                  new_dst_mac=self.plan.external_gw_mac)
                vm.install_app("l2fwd", app)
                self.oplog.record("install-app", vm.name, "DPDK l2fwd (vhost-user)")
            else:
                app = LinuxBridge(name=f"tenant{t}.br0", sim=self.sim,
                                  freq_hz=self.calibration.cpu_freq_hz,
                                  rng=self.rng.stream(f"linuxbr.t{t}"))
                for s in sides:
                    app.add_port(d.vhost_paths[(t, s)].guest_side)
                vm.install_app("linux-bridge", app)
                self.oplog.record("install-app", vm.name, "default Linux bridge")
