"""The MTS contribution: secure multi-tenant vswitch deployments.

This package is the reproduction of the paper's actual artifact -- "a
set of primitives that can be composed to configure MTS to conduct all
the experiments described in this paper":

- :mod:`repro.core.levels` -- the Baseline / Level-1 / Level-2 / Level-3
  security levels and the shared/isolated resource modes (paper 2.3, 3.2).
- :mod:`repro.core.spec` -- the declarative deployment spec + validation.
- :mod:`repro.core.vf_allocation` -- the VF-count formulas of section 3.2.
- :mod:`repro.core.primitives` -- the audit log of primitive operations a
  deployment is composed of.
- :mod:`repro.core.controller` -- the centralized controller: VF
  configuration (MACs, VLANs, spoof-check), flow rules for the ingress/
  egress chains, static ARP / proxy-ARP, NIC security filters.
- :mod:`repro.core.deployment` -- builds a runnable deployment (server,
  VMs, bridges, NIC wiring) for any spec and traffic scenario.
- :mod:`repro.core.resources` -- the CPU/memory accounting behind the
  paper's Fig. 5(c,f,i).
"""

from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import ArpMode, CompartmentKind, DeploymentSpec, TrafficScenario
from repro.core.deployment import Deployment, build_deployment, plan_deployment
from repro.core.vf_allocation import VfBudget, vf_budget
from repro.core.resources import ResourceReport
from repro.core.accounting import NetworkingMeter, PricingModel, bill
from repro.core.orchestrator import MtsOrchestrator
from repro.core.multiserver import MultiServerCloud
from repro.core.verification import AuditReport, audit_deployment

__all__ = [
    "ResourceMode",
    "SecurityLevel",
    "ArpMode",
    "CompartmentKind",
    "DeploymentSpec",
    "TrafficScenario",
    "Deployment",
    "build_deployment",
    "plan_deployment",
    "VfBudget",
    "vf_budget",
    "ResourceReport",
    "NetworkingMeter",
    "PricingModel",
    "bill",
    "MtsOrchestrator",
    "MultiServerCloud",
    "AuditReport",
    "audit_deployment",
]
