"""Per-tenant accounting and billing of virtual networking (§6).

The discussion section argues that MTS "is a new way to bill and
monitor virtual networks at granularity more than a simple flow rule:
CPU, memory and I/O for virtual networking can be charged."  This
module makes that claim executable:

- :class:`NetworkingMeter` reads a deployment's counters after a
  measurement window and attributes vswitch CPU time, memory and I/O
  bytes to tenants;
- attribution **quality** depends on the architecture, which is the
  paper's point: per-tenant compartments give *exact* hardware-counter
  attribution; shared compartments give an estimate prorated by the
  per-tenant gateway-VF byte counters the SR-IOV NIC maintains; the
  Baseline can offer only flow-rule byte counts, which a compromised
  or buggy vswitch can misreport (they live in the switch itself);
- :class:`PricingModel` turns metered usage into per-tenant invoices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.units import GIB


class AttributionQuality(Enum):
    """How trustworthy the per-tenant attribution is."""

    #: Per-tenant compartment: CPU/memory metered by the hypervisor,
    #: I/O by NIC hardware counters -- outside the tenant's TCB.
    EXACT = "exact"
    #: Shared compartment: compartment totals are exact, the per-tenant
    #: split is prorated by NIC gateway-VF byte counters.
    ESTIMATED = "estimated"
    #: Baseline: only the vswitch's own flow counters exist, inside the
    #: very component a malicious tenant may have compromised.
    SELF_REPORTED = "self-reported"


@dataclass
class TenantUsage:
    """Metered virtual-networking usage of one tenant over a window."""

    tenant_id: int
    window_seconds: float
    vswitch_cpu_seconds: float
    vswitch_memory_byte_seconds: float
    io_bytes: int
    quality: AttributionQuality

    @property
    def cpu_utilization(self) -> float:
        """Busy fraction of the window; 0 for an empty window, never
        NaN or a division error."""
        if self.window_seconds <= 0:
            return 0.0
        return self.vswitch_cpu_seconds / self.window_seconds

    @property
    def io_bytes_per_second(self) -> float:
        if self.window_seconds <= 0:
            return 0.0
        return self.io_bytes / self.window_seconds


@dataclass
class Invoice:
    tenant_id: int
    cpu_cost: float
    memory_cost: float
    io_cost: float
    quality: AttributionQuality

    @property
    def total(self) -> float:
        return self.cpu_cost + self.memory_cost + self.io_cost


@dataclass(frozen=True)
class PricingModel:
    """Unit prices, GCE-style (the paper cites GCE network pricing)."""

    per_cpu_hour: float = 0.04
    per_gib_hour: float = 0.005
    per_gib_traffic: float = 0.01

    def invoice(self, usage: TenantUsage) -> Invoice:
        return Invoice(
            tenant_id=usage.tenant_id,
            cpu_cost=usage.vswitch_cpu_seconds / 3600.0 * self.per_cpu_hour,
            memory_cost=(usage.vswitch_memory_byte_seconds / GIB / 3600.0
                         * self.per_gib_hour),
            io_cost=usage.io_bytes / GIB * self.per_gib_traffic,
            quality=usage.quality,
        )


class NetworkingMeter:
    """Attributes a deployment's networking resource use to tenants.

    Call :meth:`snapshot` before the measurement window and
    :meth:`read` after it; the meter works on deltas so it composes
    with long-running deployments.
    """

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self._io_baseline: Dict[int, int] = {}
        self._busy_baseline: Dict[int, float] = {}
        self._t0: Optional[float] = None

    # -- metering -----------------------------------------------------------

    def _tenant_io_bytes(self, tenant_id: int) -> int:
        """I/O through the tenant's NIC attachment points.

        MTS: the gateway VFs' hardware counters (rx+tx), which the
        tenant cannot touch.  Baseline: the vhost endpoints' crossing
        counts scaled by... nothing better than the vswitch's own
        accounting exists, so we read the bridge's flow counters."""
        d = self.deployment
        if d.spec.level.is_mts:
            total = 0
            for (t, _p), vf in d.gw_vf.items():
                if t == tenant_id:
                    total += vf.stats.rx_bytes + vf.stats.tx_bytes
            return total
        bridge = d.bridges[0]
        return sum(rule.n_bytes for rule in bridge.table
                   if rule.tenant_id == tenant_id)

    def _compartment_busy_seconds(self, k: int) -> float:
        bridge = self.deployment.bridges[k]
        return sum(s.busy_time for s in bridge._stations)

    def snapshot(self) -> None:
        """Mark the start of the accounting window."""
        d = self.deployment
        self._t0 = d.sim.now
        for t in range(d.spec.num_tenants):
            self._io_baseline[t] = self._tenant_io_bytes(t)
        for k in range(len(d.bridges)):
            self._busy_baseline[k] = self._compartment_busy_seconds(k)

    def read(self, pricing: Optional[PricingModel] = None) -> List[TenantUsage]:
        """Meter the window since :meth:`snapshot` (or since t=0)."""
        d = self.deployment
        spec = d.spec
        t0 = self._t0 if self._t0 is not None else 0.0
        window = d.sim.now - t0
        if window <= 0:
            # A zero-duration window has no usage by definition; the
            # old 1e-12 floor turned any residual counter delta into
            # absurd rates downstream.
            return []

        io_delta = {
            t: self._tenant_io_bytes(t) - self._io_baseline.get(t, 0)
            for t in range(spec.num_tenants)
        }

        usages: List[TenantUsage] = []
        if not spec.level.is_mts:
            # One shared vswitch in the host: CPU/memory cannot be
            # attributed per tenant at all; I/O comes from the switch's
            # own (self-reported) flow counters.
            busy = (self._compartment_busy_seconds(0)
                    - self._busy_baseline.get(0, 0.0))
            # Flat split, best effort; guard the degenerate no-tenant
            # deployment instead of dividing by zero.
            per_tenant_cpu = busy / spec.num_tenants if spec.num_tenants else 0.0
            for t in range(spec.num_tenants):
                usages.append(TenantUsage(
                    tenant_id=t,
                    window_seconds=window,
                    vswitch_cpu_seconds=per_tenant_cpu,
                    vswitch_memory_byte_seconds=0.0,
                    io_bytes=io_delta[t],
                    quality=AttributionQuality.SELF_REPORTED,
                ))
            return usages

        for k in range(spec.num_compartments):
            tenants = spec.tenants_of_compartment(k)
            busy = (self._compartment_busy_seconds(k)
                    - self._busy_baseline.get(k, 0.0))
            vm = d.vswitch_vms[k]
            memory_bytes = vm.memory.ram_bytes if vm.memory else 0
            compartment_io = sum(io_delta[t] for t in tenants)
            for t in tenants:
                if len(tenants) == 1:
                    share = 1.0
                    quality = AttributionQuality.EXACT
                elif compartment_io > 0:
                    share = io_delta[t] / compartment_io
                    quality = AttributionQuality.ESTIMATED
                else:
                    # No I/O this window: time-based costs (memory, any
                    # residual busy) still accrued, so split them evenly
                    # instead of attributing them to nobody -- otherwise
                    # windowed sums under-count the full-run truth.
                    share = 1.0 / len(tenants)
                    quality = AttributionQuality.ESTIMATED
                usages.append(TenantUsage(
                    tenant_id=t,
                    window_seconds=window,
                    vswitch_cpu_seconds=busy * share,
                    vswitch_memory_byte_seconds=memory_bytes * window * share,
                    io_bytes=io_delta[t],
                    quality=quality,
                ))
        usages.sort(key=lambda u: u.tenant_id)
        return usages


def bill(deployment: Deployment, usages: List[TenantUsage],
         pricing: PricingModel = PricingModel()) -> List[Invoice]:
    """Invoices for a metered window."""
    return [pricing.invoice(usage) for usage in usages]
