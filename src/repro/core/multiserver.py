"""Multi-server MTS: N DUTs behind a leaf / ToR-spine fabric.

The paper evaluates a single server, but its architecture -- the
ingress/egress chains, per-tenant VLANs *inside* each NIC, and overlay
tunnels *between* servers -- is a datacenter design.  This module
assembles it: ``MultiServerCloud`` builds one MTS deployment per
server, connects every server's NIC port 0 to a
:class:`~repro.net.fabric.FabricSwitch` (one leaf, or per-rack ToRs
trunked through a spine when a topology is given), gives tenants
cluster-global identities, and has the centralized controller install

- static fabric entries for every compartment's In/Out VF MAC (the
  EVPN-ish piece), and
- inter-server flow rules in every compartment: traffic to a *remote*
  tenant's IP is rewritten to the remote compartment's In/Out MAC (and
  VXLAN-encapsulated when tunneling is on) and sent out the fabric,
  where the remote server's normal Fig.-3a ingress chain takes over.
  One rule per (compartment, remote tenant) -- the rules match on
  destination IP alone, so the table grows O(K x T_remote), not
  O(T_local x T_remote) per compartment.

Tenants land on servers either by uniform striping (the default:
server ``s`` hosts global tenants ``[s*T, (s+1)*T)``) or by an
explicit **placement** map from the fabric layer's optimizer
(``repro.fabric.placement``): ``{global_tenant: (server,
compartment)}``.  With a placement, each server's
:class:`~repro.core.spec.DeploymentSpec` is derived per server
(tenant count + zone map), padding empty compartments with silent
filler tenants so the spec stays valid.

Single-port deployments only (one fabric uplink per server), matching
the paper's workload topology.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import Deployment, build_deployment
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ConfigurationError, ValidationError
from repro.host.server import Server
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.fabric import FabricSwitch
from repro.net.link import Link
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.kernel import Simulator
from repro.units import GBPS, GIB
from repro.vswitch.actions import Output, PushTunnel, SetDstMac
from repro.vswitch.flowtable import FlowRule
from repro.vswitch.matches import FlowMatch

#: Priority of inter-server rules: above the egress catch-all, below
#: the intra-compartment v2v chains.
PRIO_INTER_SERVER = 250

#: Priority of intra-server tenant-to-tenant rules: above the egress
#: catch-all, below the ingress chain (so tunnelled fabric arrivals
#: still hit the decapsulating ingress rules first).
PRIO_LOCAL = 150


@dataclass
class GlobalTenant:
    """Cluster-wide tenant identity."""

    global_id: int
    server_index: int
    local_id: int
    ip: IPv4Address
    compartment_inout_mac: MacAddress


class MultiServerCloud:
    """N servers x one spec, interconnected by a leaf (or ToR/spine).

    ``placement`` maps global tenant ids to ``(server, compartment)``;
    ``None`` stripes ``spec.num_tenants`` tenants onto every server.
    ``topology`` (duck-typed; see ``repro.fabric.topology``) supplies
    ``num_racks`` / ``rack_of(server)`` / link bandwidths -- when it
    describes more than one rack, per-rack ToR switches are trunked
    through a spine.  ``link_bandwidth_of`` overrides individual
    server-link bandwidths by link name (the hybrid simulation passes
    residual capacities this way), and ``global_server_ids`` lets a
    *subset* cloud (DES over only the servers under study) keep
    fabric-global server numbering for seeds, addresses, and links.
    """

    def __init__(
        self,
        spec: DeploymentSpec,
        num_servers: int = 2,
        sim: Optional[Simulator] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        link_bandwidth_bps: float = 10 * GBPS,
        seed: int = 0,
        placement: Optional[Dict[int, Tuple[int, int]]] = None,
        topology=None,
        link_bandwidth_of: Optional[Callable[[str], Optional[float]]] = None,
        global_server_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if not spec.level.is_mts:
            raise ConfigurationError(
                "the multi-server fabric routes on In/Out VF MACs; build "
                "it with an MTS spec")
        if spec.nic_ports != 1:
            raise ValidationError(
                "multi-server deployments use the single-port (workload) "
                "topology: one fabric uplink per server")
        if num_servers < 2 and placement is None:
            raise ValidationError("need at least two servers")
        if num_servers < 1:
            raise ValidationError("need at least one server")
        if global_server_ids is not None:
            if len(global_server_ids) != num_servers:
                raise ValidationError(
                    f"{len(global_server_ids)} global server ids for "
                    f"{num_servers} servers")
            if len(set(global_server_ids)) != num_servers:
                raise ValidationError("global server ids must be unique")
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self._server_ids = (list(global_server_ids)
                            if global_server_ids is not None
                            else list(range(num_servers)))
        self._link_bandwidth_of = link_bandwidth_of
        self._placement = dict(placement) if placement is not None else None
        self._locals = self._assign_locals(num_servers)
        self._build_fabric(num_servers, topology)
        self.deployments: List[Deployment] = []
        self.tenants: Dict[int, GlobalTenant] = {}

        for s in range(num_servers):
            server_spec = self._server_spec(s)
            deployment = build_deployment(server_spec, TrafficScenario.P2V,
                                          sim=self.sim,
                                          calibration=calibration,
                                          seed=seed + self._server_ids[s],
                                          server=self._build_server(
                                              server_spec, s, calibration),
                                          site_id=self._server_ids[s])
            self._wire_server(s, deployment, link_bandwidth_bps)
            self.deployments.append(deployment)
        self._register_tenants()
        self._program_fabric()
        self._program_intra_server_rules()
        self._program_inter_server_rules()

    # -- construction ------------------------------------------------------

    def _assign_locals(self, num_servers: int) -> List[List[int]]:
        """Global tenant ids hosted on each server, in local-id order."""
        if self._placement is None:
            per = self.spec.num_tenants
            return [[s * per + t for t in range(per)]
                    for s in range(num_servers)]
        by_server: List[List[int]] = [[] for _ in range(num_servers)]
        for gid, (s, k) in self._placement.items():
            if not 0 <= s < num_servers:
                raise ValidationError(
                    f"tenant {gid} placed on unknown server {s}")
            if not 0 <= k < max(1, self.spec.num_compartments):
                raise ValidationError(
                    f"tenant {gid} placed in unknown compartment {k}")
            by_server[s].append(gid)
        return [sorted(gids) for gids in by_server]

    def _build_server(self, server_spec: DeploymentSpec, server: int,
                      calibration: Calibration) -> Server:
        """A host sized to its spec: a dense placement can pack more
        tenant VMs onto one server than the default 16-core host can
        pin, so give each server exactly the cores its VMs will claim
        (never fewer than the stock host, so sparse servers match the
        single-server model)."""
        vms = server_spec.num_tenants + server_spec.num_compartments
        needed = (server_spec.num_tenants * server_spec.tenant_cores
                  + server_spec.num_compartments + 2)
        return Server(self.sim, name=f"dut{self._server_ids[server]}",
                      num_cores=max(16, needed),
                      freq_hz=calibration.cpu_freq_hz,
                      memory_bytes=max(64 * GIB,
                                       (vms + 2) * server_spec.vm_memory_bytes),
                      hugepages_1g=max(16, vms + 2))

    def _server_spec(self, server: int) -> DeploymentSpec:
        """The per-server deployment spec: the shared spec as-is under
        striping, or a derived tenant-count + zone map under an explicit
        placement (empty compartments get a silent filler tenant so the
        spec stays valid -- fillers are never registered and never send)."""
        if self._placement is None:
            return self.spec
        zones = [self._placement[gid][1] for gid in self._locals[server]]
        for k in range(self.spec.num_compartments):
            if k not in zones:
                zones.append(k)  # filler
        return replace(self.spec, num_tenants=len(zones),
                       zone_of_tenant=tuple(zones))

    def _build_fabric(self, num_servers: int, topology) -> None:
        """One leaf by default; per-rack ToRs trunked via a spine when
        the topology spans multiple racks.  ``self._tor_of[s]`` /
        ``self._port_of[s]`` locate each server's access port."""
        num_racks = getattr(topology, "num_racks", 1) if topology else 1
        if num_racks <= 1:
            self.fabric: Optional[FabricSwitch] = FabricSwitch(
                self.sim, num_ports=num_servers + 2)
            self.switches: List[FabricSwitch] = [self.fabric]
            self.spine: Optional[FabricSwitch] = None
            self._tor_of = [self.fabric] * num_servers
            self._port_of = list(range(num_servers))
            return
        members: Dict[int, List[int]] = {}
        for s in range(num_servers):
            members.setdefault(topology.rack_of(self._server_ids[s]),
                               []).append(s)
        racks = sorted(members)
        self.spine = FabricSwitch(self.sim, num_ports=len(racks) + 2,
                                  name="spine0")
        self.fabric = None
        self.switches = [self.spine]
        self._tor_of = [None] * num_servers
        self._port_of = [0] * num_servers
        self._tor_by_rack: Dict[int, FabricSwitch] = {}
        self._uplink_port_of: Dict[int, int] = {}
        self._spine_port_of: Dict[int, int] = {}
        trunk_bps = getattr(topology, "tor_uplink_bps", 40 * GBPS)
        for spine_port, rack in enumerate(racks):
            tor = FabricSwitch(self.sim, num_ports=len(members[rack]) + 2,
                               name=f"tor{rack}")
            self.switches.append(tor)
            uplink = len(members[rack])
            tor.trunk(uplink, self.spine, spine_port,
                      bandwidth_bps=trunk_bps)
            self._tor_by_rack[rack] = tor
            self._uplink_port_of[rack] = uplink
            self._spine_port_of[rack] = spine_port
            for port, s in enumerate(members[rack]):
                self._tor_of[s] = tor
                self._port_of[s] = port
        self._rack_of = {s: topology.rack_of(self._server_ids[s])
                         for s in range(num_servers)}

    def _link_bps(self, name: str, default: float) -> float:
        if self._link_bandwidth_of is None:
            return default
        override = self._link_bandwidth_of(name)
        return default if override is None else override

    def _wire_server(self, index: int, deployment: Deployment,
                     bandwidth: float) -> None:
        gid = self._server_ids[index]
        rx, set_link = self._tor_of[index].attach(self._port_of[index])
        # server -> fabric
        up = f"uplink.s{gid}"
        deployment.connect_egress(0, Link(
            self.sim, rx, bandwidth_bps=self._link_bps(up, bandwidth),
            name=up))
        # fabric -> server
        down = f"downlink.s{gid}"
        set_link(Link(self.sim, deployment.external_ingress(0),
                      bandwidth_bps=self._link_bps(down, bandwidth),
                      name=down))

    def _register_tenants(self) -> None:
        for s, deployment in enumerate(self.deployments):
            for local, gid in enumerate(self._locals[s]):
                k = deployment.compartment_of_tenant(local)
                mac = deployment.inout_vf[(k, 0)].mac
                assert mac is not None
                self.tenants[gid] = GlobalTenant(
                    global_id=gid,
                    server_index=s,
                    local_id=local,
                    ip=deployment.plan.tenant_ip(local),
                    compartment_inout_mac=mac,
                )

    def _program_fabric(self) -> None:
        for s, deployment in enumerate(self.deployments):
            for (_k, _p), vf in deployment.inout_vf.items():
                assert vf.mac is not None
                self._install_mac(s, vf.mac)

    def _install_mac(self, server: int, mac: MacAddress) -> None:
        if self.fabric is not None:
            self.fabric.install_static(mac, self._port_of[server])
            return
        rack = self._rack_of[server]
        self._tor_of[server].install_static(mac, self._port_of[server])
        self.spine.install_static(mac, self._spine_port_of[rack])
        for other_rack, other in self._tor_by_rack.items():
            if other_rack != rack:
                other.install_static(mac, self._uplink_port_of[other_rack])

    def _program_intra_server_rules(self) -> None:
        """Tenant-to-tenant delivery *within* a server.

        Same compartment: rewrite to the destination tenant VF's MAC
        and emit on its gateway port (the tail of the normal ingress
        chain).  Other compartment: rewrite to that compartment's
        In/Out MAC and emit on our In/Out port -- the NIC's embedded
        switch hairpins the frame between the two In/Out VFs without
        touching the fabric.
        """
        for s, deployment in enumerate(self.deployments):
            local = [t for t in self.tenants.values() if t.server_index == s]
            for view in deployment.compartment_views:
                for target in local:
                    if target.local_id in view.tenants:
                        actions = [
                            SetDstMac(view.tenant_vf_mac[
                                (target.local_id, 0)]),
                            Output(view.gw_port_no[(target.local_id, 0)]),
                        ]
                    else:
                        actions = [SetDstMac(target.compartment_inout_mac)]
                        if self.spec.tunneling:
                            actions.append(PushTunnel(
                                deployment.plan.vni(target.local_id)))
                        actions.append(Output(view.inout_port_no[0]))
                    view.bridge.add_flow(FlowRule(
                        match=FlowMatch(dst_ip=target.ip),
                        actions=actions,
                        priority=PRIO_LOCAL,
                    ))
                    deployment.controller.rules_installed += 1

    def _program_inter_server_rules(self) -> None:
        """Every compartment learns how to reach every remote tenant.

        One dst-ip rule per (compartment, remote tenant): the rewrite is
        the same whichever local tenant is talking, so matching on the
        gateway in-port only multiplied the table by the compartment's
        tenant count without changing behaviour.
        """
        self.inter_server_rules = 0
        for s, deployment in enumerate(self.deployments):
            remote = [t for t in self.tenants.values()
                      if t.server_index != s]
            for view in deployment.compartment_views:
                for target in remote:
                    actions = [SetDstMac(target.compartment_inout_mac)]
                    if self.spec.tunneling:
                        # VNIs come from the *target* site's plan so
                        # the remote ingress chain matches them.
                        target_plan = self.deployments[
                            target.server_index].plan
                        actions.append(PushTunnel(
                            target_plan.vni(target.local_id)))
                    actions.append(Output(view.inout_port_no[0]))
                    rule = FlowRule(
                        match=FlowMatch(dst_ip=target.ip),
                        actions=actions,
                        priority=PRIO_INTER_SERVER,
                    )
                    view.bridge.add_flow(rule)
                    deployment.controller.rules_installed += 1
                    self.inter_server_rules += 1

    # -- use -------------------------------------------------------------------

    def deployment_of(self, global_tenant: int) -> Deployment:
        return self.deployments[self.tenants[global_tenant].server_index]

    def send_between_tenants(self, src_global: int, dst_global: int,
                             size_bytes: int = 64):
        """Inject one frame from one tenant's VF towards another tenant
        (possibly on another server); returns the frame for tracing."""
        from repro.net.packet import Frame
        src = self.tenants[src_global]
        dst = self.tenants[dst_global]
        deployment = self.deployments[src.server_index]
        src_vf = deployment.tenant_vf[(src.local_id, 0)]
        gw_mac = deployment.gw_vf[(src.local_id, 0)].mac
        assert src_vf.mac is not None and gw_mac is not None
        frame = Frame(
            src_mac=src_vf.mac,
            dst_mac=gw_mac,
            src_ip=src.ip,
            dst_ip=dst.ip,
            size_bytes=size_bytes,
            flow_id=dst.local_id,
            tenant_id=src.local_id,
            created_at=self.sim.now,
        )
        src_vf.port.transmit(frame)
        return frame

    def attach_sink(self, global_tenant: int) -> List:
        """Replace the tenant's forwarding app with a receive sink
        (a tenant *hosting a service* consumes frames rather than
        bouncing them like the benchmark l2fwd); returns the list the
        received frames land in."""
        tenant = self.tenants[global_tenant]
        deployment = self.deployments[tenant.server_index]
        received: List = []
        vf = deployment.tenant_vf[(tenant.local_id, 0)]
        vf.port.rx.connect(received.append)
        return received

    def run(self, duration: float = 1.0) -> None:
        self.sim.run(until=self.sim.now + duration)

    def describe(self) -> str:
        if self.fabric is not None:
            fabric = f"leaf switch with {len(self.fabric.ports)} ports"
        else:
            fabric = (f"{len(self.switches) - 1} ToRs + spine "
                      f"({len(self.spine.ports)} trunk ports)")
        lines = [f"cloud: {len(self.deployments)} servers x "
                 f"{self.spec.label}, {len(self.tenants)} tenants, "
                 + fabric]
        for tenant in self.tenants.values():
            lines.append(
                f"  tenant {tenant.global_id}: server {tenant.server_index} "
                f"local {tenant.local_id} ip {tenant.ip}")
        return "\n".join(lines)
