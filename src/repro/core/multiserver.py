"""Multi-server MTS: several DUTs behind one leaf switch.

The paper evaluates a single server, but its architecture -- the
ingress/egress chains, per-tenant VLANs *inside* each NIC, and overlay
tunnels *between* servers -- is a datacenter design.  This module
assembles it: ``MultiServerCloud`` builds one MTS deployment per
server, connects every server's NIC port 0 to a
:class:`~repro.net.fabric.FabricSwitch`, gives tenants cluster-global
identities, and has the centralized controller install

- static fabric entries for every compartment's In/Out VF MAC (the
  EVPN-ish piece), and
- inter-server flow rules in every compartment: traffic from a local
  tenant to a *remote* tenant's IP is rewritten to the remote
  compartment's In/Out MAC (and VXLAN-encapsulated when tunneling is
  on) and sent out the fabric, where the remote server's normal
  Fig.-3a ingress chain takes over.

Single-port deployments only (one fabric uplink per server), matching
the paper's workload topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment, build_deployment
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ConfigurationError, ValidationError
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.fabric import FabricSwitch
from repro.net.link import Link
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim.kernel import Simulator
from repro.units import GBPS
from repro.vswitch.actions import Output, PushTunnel, SetDstMac
from repro.vswitch.flowtable import FlowRule
from repro.vswitch.matches import FlowMatch

#: Priority of inter-server rules: above the egress catch-all, below
#: the intra-compartment v2v chains.
PRIO_INTER_SERVER = 250


@dataclass
class GlobalTenant:
    """Cluster-wide tenant identity."""

    global_id: int
    server_index: int
    local_id: int
    ip: IPv4Address
    compartment_inout_mac: MacAddress


class MultiServerCloud:
    """N servers x one spec, interconnected by a leaf switch."""

    def __init__(
        self,
        spec: DeploymentSpec,
        num_servers: int = 2,
        sim: Optional[Simulator] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        link_bandwidth_bps: float = 10 * GBPS,
        seed: int = 0,
    ) -> None:
        if not spec.level.is_mts:
            raise ConfigurationError(
                "the multi-server fabric routes on In/Out VF MACs; build "
                "it with an MTS spec")
        if spec.nic_ports != 1:
            raise ValidationError(
                "multi-server deployments use the single-port (workload) "
                "topology: one fabric uplink per server")
        if num_servers < 2:
            raise ValidationError("need at least two servers")
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self.fabric = FabricSwitch(self.sim, num_ports=num_servers + 2)
        self.deployments: List[Deployment] = []
        self.tenants: Dict[int, GlobalTenant] = {}

        for s in range(num_servers):
            deployment = build_deployment(spec, TrafficScenario.P2V,
                                          sim=self.sim,
                                          calibration=calibration,
                                          seed=seed + s,
                                          site_id=s)
            self._wire_server(s, deployment, link_bandwidth_bps)
            self.deployments.append(deployment)
        self._register_tenants()
        self._program_fabric()
        self._program_inter_server_rules()

    # -- construction ------------------------------------------------------

    def _wire_server(self, index: int, deployment: Deployment,
                     bandwidth: float) -> None:
        rx, set_link = self.fabric.attach(index)
        # server -> fabric
        deployment.connect_egress(0, Link(self.sim, rx,
                                          bandwidth_bps=bandwidth,
                                          name=f"uplink.s{index}"))
        # fabric -> server
        set_link(Link(self.sim, deployment.external_ingress(0),
                      bandwidth_bps=bandwidth,
                      name=f"downlink.s{index}"))

    def _register_tenants(self) -> None:
        per_server = self.spec.num_tenants
        for s, deployment in enumerate(self.deployments):
            for local in range(per_server):
                global_id = s * per_server + local
                k = deployment.compartment_of_tenant(local)
                mac = deployment.inout_vf[(k, 0)].mac
                assert mac is not None
                self.tenants[global_id] = GlobalTenant(
                    global_id=global_id,
                    server_index=s,
                    local_id=local,
                    ip=self._global_ip(s, local),
                    compartment_inout_mac=mac,
                )

    def _global_ip(self, server: int, local: int) -> IPv4Address:
        """Cluster-global tenant addressing, straight from each site's
        own address plan (10.<site>.<tenant>.10)."""
        return self.deployments[server].plan.tenant_ip(local)

    def _program_fabric(self) -> None:
        for s, deployment in enumerate(self.deployments):
            for (_k, _p), vf in deployment.inout_vf.items():
                assert vf.mac is not None
                self.fabric.install_static(vf.mac, s)

    def _program_inter_server_rules(self) -> None:
        """Every compartment learns how to reach every remote tenant."""
        for s, deployment in enumerate(self.deployments):
            remote = [t for t in self.tenants.values() if t.server_index != s]
            for view in deployment.compartment_views:
                for target in remote:
                    for local_tenant in view.tenants:
                        actions = [SetDstMac(target.compartment_inout_mac)]
                        if self.spec.tunneling:
                            # VNIs come from the *target* site's plan so
                            # the remote ingress chain matches them.
                            target_plan = self.deployments[
                                target.server_index].plan
                            actions.append(PushTunnel(
                                target_plan.vni(target.local_id)))
                        actions.append(Output(view.inout_port_no[0]))
                        rule = FlowRule(
                            match=FlowMatch(
                                in_port=view.gw_port_no[(local_tenant, 0)],
                                dst_ip=target.ip),
                            actions=actions,
                            priority=PRIO_INTER_SERVER,
                            tenant_id=local_tenant,
                        )
                        view.bridge.add_flow(rule)
                        deployment.controller.rules_installed += 1

    # -- use -------------------------------------------------------------------

    def deployment_of(self, global_tenant: int) -> Deployment:
        return self.deployments[self.tenants[global_tenant].server_index]

    def send_between_tenants(self, src_global: int, dst_global: int,
                             size_bytes: int = 64):
        """Inject one frame from one tenant's VF towards another tenant
        (possibly on another server); returns the frame for tracing."""
        from repro.net.packet import Frame
        src = self.tenants[src_global]
        dst = self.tenants[dst_global]
        deployment = self.deployments[src.server_index]
        src_vf = deployment.tenant_vf[(src.local_id, 0)]
        gw_mac = deployment.gw_vf[(src.local_id, 0)].mac
        assert src_vf.mac is not None and gw_mac is not None
        frame = Frame(
            src_mac=src_vf.mac,
            dst_mac=gw_mac,
            src_ip=src.ip,
            dst_ip=dst.ip,
            size_bytes=size_bytes,
            flow_id=dst.local_id,
            tenant_id=src.local_id,
            created_at=self.sim.now,
        )
        src_vf.port.transmit(frame)
        return frame

    def attach_sink(self, global_tenant: int) -> List:
        """Replace the tenant's forwarding app with a receive sink
        (a tenant *hosting a service* consumes frames rather than
        bouncing them like the benchmark l2fwd); returns the list the
        received frames land in."""
        tenant = self.tenants[global_tenant]
        deployment = self.deployments[tenant.server_index]
        received: List = []
        vf = deployment.tenant_vf[(tenant.local_id, 0)]
        vf.port.rx.connect(received.append)
        return received

    def run(self, duration: float = 1.0) -> None:
        self.sim.run(until=self.sim.now + duration)

    def describe(self) -> str:
        lines = [f"cloud: {len(self.deployments)} servers x "
                 f"{self.spec.label}, {len(self.tenants)} tenants, "
                 f"leaf switch with {len(self.fabric.ports)} ports"]
        for tenant in self.tenants.values():
            lines.append(
                f"  tenant {tenant.global_id}: server {tenant.server_index} "
                f"local {tenant.local_id} ip {tenant.ip}")
        return "\n".join(lines)
