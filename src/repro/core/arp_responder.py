"""The in-vswitch proxy-ARP responder, wired into the dataplane.

Section 3.2 offers two ways to point tenants at their gateway: static
ARP entries, "or using the centralized controller and vswitch as a
proxy-ARP/ARP-responder".  This module is the second option's
dataplane: the controller installs a high-priority punt rule for ARP
on every gateway port, and this app answers requests from the
controller-fed binding table -- the reply leaves on the same gateway
port, crosses the NIC, and lands in the asking tenant's VF.

ARP frames are modelled structurally: a *request* is an
``EtherType.ARP`` broadcast whose ``dst_ip`` is the IP being resolved
(``src_mac``/``src_ip`` identify the asker); the *reply* is unicast
back with ``src_mac`` = the resolved MAC and ``src_ip`` = the resolved
IP.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.arp import ProxyArpResponder
from repro.net.packet import EtherType, Frame
from repro.vswitch.ovs import OvsBridge


def make_arp_request(src_mac: MacAddress, src_ip: IPv4Address,
                     requested_ip: IPv4Address) -> Frame:
    """A who-has broadcast, as a tenant VM would emit it."""
    from repro.net.addresses import BROADCAST_MAC
    return Frame(
        src_mac=src_mac,
        dst_mac=BROADCAST_MAC,
        ethertype=EtherType.ARP,
        src_ip=src_ip,
        dst_ip=requested_ip,
    )


class ArpResponderApp:
    """Answers punted ARP requests from the responder's bindings."""

    def __init__(self, bridge: OvsBridge,
                 responder: ProxyArpResponder) -> None:
        self.bridge = bridge
        self.responder = responder
        self.replies_sent = 0
        self.ignored = 0
        bridge.punt_handler = self.handle

    def handle(self, frame: Frame, in_port: int) -> None:
        if frame.ethertype is not EtherType.ARP or frame.dst_ip is None:
            self.ignored += 1
            return
        mac = self.responder.respond(frame.dst_ip)
        if mac is None:
            self.ignored += 1
            return
        reply = Frame(
            src_mac=mac,
            dst_mac=frame.src_mac,
            ethertype=EtherType.ARP,
            src_ip=frame.dst_ip,
            dst_ip=frame.src_ip,
        )
        self.replies_sent += 1
        # Back out the port the request arrived on: the NIC's VLAN
        # domain carries it to the asking tenant's VF.
        self.bridge.port(in_port).pair.transmit(reply)
