"""Resource accounting: the data behind Fig. 5(c), (f) and (i).

The paper reports, per configuration, the total physical CPU cores and
the memory (hugepages) consumed by virtual networking: the Host OS core
(always counted), the vswitch compartments' cores, and each VM's 1 GB
hugepage.  Tenant VM resources are the tenant's own and are reported
separately (they are constant across configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.server import Server
from repro.host.vm import VmRole


@dataclass(frozen=True)
class ResourceReport:
    """Totals for one deployment."""

    label: str
    host_cores: int
    vswitch_cores: int
    tenant_cores: int
    vswitch_hugepages_1g: int
    total_hugepages_1g: int
    ram_bytes: int

    @property
    def networking_cores(self) -> int:
        """Cores spent on virtual networking (host + vswitching) -- the
        headline number of the paper's resource plots."""
        return self.host_cores + self.vswitch_cores

    def row(self) -> str:
        return (
            f"{self.label:<16} cores(host+vswitch)={self.networking_cores} "
            f"tenant_cores={self.tenant_cores} "
            f"hugepages={self.total_hugepages_1g}"
        )


def measure_resources(server: Server, label: str) -> ResourceReport:
    """Read a report off a built deployment's server."""
    host_cores = 1
    vswitch_cores = 0
    tenant_cores = 0
    vswitch_hugepages = 0

    # Cores pinned to vswitch consumers that are not the host core, and
    # not tenant VMs.  A consumer string is "<vm>.vcpuN" or a raw tag
    # like "ovs-dpdk.pmd0".
    tenant_vm_names = {vm.name for vm in server.vms.values()
                       if vm.role == VmRole.TENANT}
    vswitch_vm_names = {vm.name for vm in server.vms.values()
                        if vm.role == VmRole.VSWITCH}

    for core in server.cores.cores:
        if not core.consumers:
            continue
        owners = {c.split(".")[0] for c in core.consumers}
        if core is server.cores.host_core:
            # The Baseline's kernel OVS shares this core; it is already
            # counted as the host core.
            continue
        if owners & tenant_vm_names:
            tenant_cores += 1
        elif owners & vswitch_vm_names or any(
            o.startswith("ovs") or o == "vswitch-shared" for o in owners
        ):
            vswitch_cores += 1

    for owner, allocation in server.memory.owners().items():
        if owner in vswitch_vm_names or owner.startswith("ovs"):
            vswitch_hugepages += allocation.hugepages_1g

    return ResourceReport(
        label=label,
        host_cores=host_cores,
        vswitch_cores=vswitch_cores,
        tenant_cores=tenant_cores,
        vswitch_hugepages_1g=vswitch_hugepages,
        total_hugepages_1g=server.memory.allocated_hugepages(),
        ram_bytes=server.memory.allocated_bytes(),
    )
