"""The declarative deployment spec and its validation rules.

A :class:`DeploymentSpec` captures everything the paper varies between
experimental runs: security level, number of vswitch compartments,
resource mode, kernel vs user-space (DPDK) datapath, number of NIC
ports (two for the Fig. 5 micro-benchmarks, one for the Fig. 6 workload
runs), and the system-support options of section 3.2 (static ARP vs
proxy ARP, overlay tunneling).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.core.levels import ResourceMode, SecurityLevel, security_label
from repro.units import GIB


class TrafficScenario(Enum):
    """The canonical cloud traffic scenarios of Fig. 4."""

    P2P = "p2p"
    P2V = "p2v"
    V2V = "v2v"


class ArpMode(Enum):
    """How tenant VMs resolve their default gateway (section 3.2)."""

    STATIC = "static"          # static ARP entry injected per tenant VM
    PROXY = "proxy"            # controller-fed ARP responder in the vswitch


class CompartmentKind(Enum):
    """What isolates a vswitch compartment (section 3.1 lists VMs,
    OS-level sandboxes/containers, enclaves...; section 6 notes that
    container compartments trade the VM boundary for density but run
    into the NIC's VF ceiling)."""

    VM = "vm"
    CONTAINER = "container"


@dataclass(frozen=True)
class DeploymentSpec:
    """One experimental configuration."""

    level: SecurityLevel
    num_tenants: int = 4
    num_vswitch_vms: int = 1
    resource_mode: ResourceMode = ResourceMode.SHARED
    user_space: bool = False          # Level-3: DPDK datapath
    baseline_cores: int = 1           # cores given to the Baseline vswitch
    nic_ports: int = 2
    tenant_cores: int = 2
    vm_memory_bytes: int = 4 * GIB
    vm_hugepages_1g: int = 1
    arp_mode: ArpMode = ArpMode.STATIC
    tunneling: bool = False
    tunnel_vni_base: int = 5000
    #: Optional explicit security-zone assignment: ``zone_of_tenant[t]``
    #: is the compartment tenant ``t``'s vswitch runs in (the paper's
    #: "based on security zones or on a per-tenant basis").  ``None``
    #: falls back to contiguous blocks.
    zone_of_tenant: Optional[Tuple[int, ...]] = None
    #: VM compartments (the paper's prototype) or containers (denser:
    #: no guest OS, 512 MiB instead of 4 GiB, no hugepage unless DPDK --
    #: but one security boundary weaker and still VF-limited).
    compartment_kind: CompartmentKind = CompartmentKind.VM
    #: The §3.2 "resource allocation spectrum": with the SHARED mode,
    #: these compartments nevertheless get a dedicated core (premium
    #: tenants buy isolation; the rest stack on the shared core).
    premium_compartments: Tuple[int, ...] = ()
    #: Program compartments OVN-style: table 0 classifies per tenant
    #: and jumps to a per-tenant table (one logical datapath per
    #: OpenFlow table) instead of one flat prioritized table.
    #: Behaviourally identical; structurally closer to production
    #: controllers.
    multi_table: bool = False

    def __post_init__(self) -> None:
        self.validate()

    # -- derived ------------------------------------------------------------

    @property
    def label(self) -> str:
        if self.level is SecurityLevel.BASELINE:
            base = f"Baseline({self.baseline_cores})"
            return base + ("+L3" if self.user_space else "")
        return security_label(self.level, self.num_vswitch_vms, self.user_space)

    @property
    def num_compartments(self) -> int:
        """Vswitch compartments (0 for the Baseline's host-resident OVS)."""
        return 0 if self.level is SecurityLevel.BASELINE else self.num_vswitch_vms

    def tenants_of_compartment(self, k: int) -> List[int]:
        """Tenants whose vswitch lives in compartment ``k``: the explicit
        zone map if given, contiguous blocks otherwise."""
        if self.level is SecurityLevel.BASELINE:
            return list(range(self.num_tenants))
        if self.zone_of_tenant is not None:
            return [t for t, zone in enumerate(self.zone_of_tenant)
                    if zone == k]
        per = self.num_tenants // self.num_vswitch_vms
        extra = self.num_tenants % self.num_vswitch_vms
        start = k * per + min(k, extra)
        size = per + (1 if k < extra else 0)
        return list(range(start, start + size))

    def compartment_of_tenant(self, tenant_id: int) -> int:
        for k in range(max(1, self.num_compartments)):
            if tenant_id in self.tenants_of_compartment(k):
                return k
        raise ValidationError(f"tenant {tenant_id} out of range")

    # -- (de)serialization -----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (enums by value)."""
        return {
            "level": self.level.value,
            "num_tenants": self.num_tenants,
            "num_vswitch_vms": self.num_vswitch_vms,
            "resource_mode": self.resource_mode.value,
            "user_space": self.user_space,
            "baseline_cores": self.baseline_cores,
            "nic_ports": self.nic_ports,
            "tenant_cores": self.tenant_cores,
            "vm_memory_bytes": self.vm_memory_bytes,
            "vm_hugepages_1g": self.vm_hugepages_1g,
            "arp_mode": self.arp_mode.value,
            "tunneling": self.tunneling,
            "tunnel_vni_base": self.tunnel_vni_base,
            "zone_of_tenant": (list(self.zone_of_tenant)
                               if self.zone_of_tenant is not None else None),
            "compartment_kind": self.compartment_kind.value,
            "premium_compartments": list(self.premium_compartments),
            "multi_table": self.multi_table,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so
        config typos fail loudly."""
        known = {
            "level", "num_tenants", "num_vswitch_vms", "resource_mode",
            "user_space", "baseline_cores", "nic_ports", "tenant_cores",
            "vm_memory_bytes", "vm_hugepages_1g", "arp_mode", "tunneling",
            "tunnel_vni_base", "zone_of_tenant", "compartment_kind",
            "premium_compartments", "multi_table",
        }
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown spec fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["level"] = SecurityLevel(kwargs["level"])
        if "resource_mode" in kwargs:
            kwargs["resource_mode"] = ResourceMode(kwargs["resource_mode"])
        if "arp_mode" in kwargs:
            kwargs["arp_mode"] = ArpMode(kwargs["arp_mode"])
        if "compartment_kind" in kwargs:
            kwargs["compartment_kind"] = CompartmentKind(
                kwargs["compartment_kind"])
        if kwargs.get("zone_of_tenant") is not None:
            kwargs["zone_of_tenant"] = tuple(kwargs["zone_of_tenant"])
        if "premium_compartments" in kwargs:
            kwargs["premium_compartments"] = tuple(
                kwargs["premium_compartments"])
        return cls(**kwargs)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if self.num_tenants < 1:
            raise ValidationError("need at least one tenant")
        if self.nic_ports not in (1, 2):
            raise ValidationError("the testbed NIC has one or two ports")
        if self.tenant_cores < 1:
            raise ValidationError("tenant VMs need at least one core")
        if self.level is SecurityLevel.BASELINE:
            if self.baseline_cores < 1:
                raise ValidationError("the Baseline vswitch needs >= 1 core")
        elif self.level is SecurityLevel.LEVEL_1:
            if self.num_vswitch_vms != 1:
                raise ValidationError("Level-1 means exactly one vswitch VM")
        else:  # LEVEL_2
            if self.num_vswitch_vms < 2:
                raise ValidationError(
                    "Level-2 means multiple vswitch VMs; use Level-1 for one"
                )
            if self.num_vswitch_vms > self.num_tenants:
                raise ValidationError(
                    "more vswitch VMs than tenants leaves empty compartments"
                )
        if self.zone_of_tenant is not None:
            if self.level is SecurityLevel.BASELINE:
                raise ValidationError("the Baseline has no compartments to "
                                      "zone tenants into")
            if len(self.zone_of_tenant) != self.num_tenants:
                raise ValidationError(
                    f"zone map covers {len(self.zone_of_tenant)} tenants, "
                    f"expected {self.num_tenants}")
            zones = set(self.zone_of_tenant)
            if not zones <= set(range(self.num_vswitch_vms)):
                raise ValidationError(
                    f"zone map references unknown compartments: "
                    f"{sorted(zones - set(range(self.num_vswitch_vms)))}")
            if zones != set(range(self.num_vswitch_vms)):
                raise ValidationError(
                    "every compartment needs at least one tenant "
                    "(empty compartments waste a core and a VM)")
        if self.premium_compartments:
            if not self.level.is_mts:
                raise ValidationError("the Baseline has no compartments "
                                      "to upgrade")
            unknown = set(self.premium_compartments) - set(
                range(self.num_vswitch_vms))
            if unknown:
                raise ValidationError(
                    f"premium compartments {sorted(unknown)} do not exist")
            if self.resource_mode is ResourceMode.ISOLATED:
                raise ValidationError(
                    "premium compartments only make sense in the shared "
                    "mode (isolated already dedicates every core)")
        if self.user_space and self.resource_mode is not ResourceMode.ISOLATED:
            # "one physical core needs to be allocated for each ovs-DPDK
            # compartment ... hence, only the isolated mode was used".
            raise ValidationError(
                "the DPDK datapath busy-polls a full core: Level-3 requires "
                "the isolated resource mode (paper section 4, Resources)"
            )

    def validate_scenario(self, scenario: TrafficScenario) -> None:
        """Scenario-specific feasibility (the paper's v2v restriction)."""
        if scenario is TrafficScenario.V2V and self.level.is_mts:
            for k in range(self.num_compartments):
                if len(self.tenants_of_compartment(k)) < 2:
                    raise ValidationError(
                        "v2v chains two tenant VMs behind one vswitch VM; "
                        f"compartment {k} has fewer than 2 tenants (this is "
                        "why the paper could not evaluate 4 vswitch VMs in "
                        "v2v)"
                    )
        if scenario is TrafficScenario.V2V and self.num_tenants < 2:
            raise ValidationError("v2v needs at least two tenants")
