"""The audit log of primitive operations composing a deployment.

The paper's framework is "a set of primitives that can be composed to
configure MTS to conduct all the experiments".  Every step the builder
takes -- defining a VM, creating and configuring a VF, adding a bridge
port, installing a flow rule or a NIC filter, injecting an ARP entry --
is recorded as a :class:`Primitive` so that a deployment can be
inspected, diffed and asserted on (and so ``plan_deployment`` can show
an operator what a spec would do before touching anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Primitive:
    """One recorded configuration step."""

    verb: str      # e.g. "define-vm", "create-vf", "add-flow"
    target: str    # the object acted on, e.g. "vsw0", "pf0vf3"
    detail: str    # human-readable parameters

    def __str__(self) -> str:
        return f"{self.verb:<18} {self.target:<16} {self.detail}"


class OpLog:
    """Append-only record of a deployment's primitive operations."""

    def __init__(self) -> None:
        self._ops: List[Primitive] = []

    def record(self, verb: str, target: str, detail: str = "") -> Primitive:
        op = Primitive(verb, target, detail)
        self._ops.append(op)
        return op

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Primitive]:
        return iter(self._ops)

    def with_verb(self, verb: str) -> List[Primitive]:
        return [op for op in self._ops if op.verb == verb]

    def verbs(self) -> List[str]:
        """Distinct verbs in first-appearance order."""
        seen: List[str] = []
        for op in self._ops:
            if op.verb not in seen:
                seen.append(op.verb)
        return seen

    def summary(self) -> str:
        """Counts per verb, e.g. for a deployment's describe() output."""
        lines = []
        for verb in self.verbs():
            lines.append(f"{verb}: {len(self.with_verb(verb))}")
        return ", ".join(lines)

    def dump(self) -> str:
        return "\n".join(str(op) for op in self._ops)
