"""SR-IOV VF budgeting (paper section 3.2, "Resource allocation").

The paper derives how many VFs each security level needs and checks it
against the 64-VFs-per-PF ceiling of the SR-IOV standard:

- Level-1, 1 NIC port: ``1 In/Out + T gateway + T tenant`` VFs
  (1 tenant -> 3, 4 tenants -> 9).
- Level-2, 1 NIC port, one vswitch VM per tenant:
  ``T In/Out + T gateway + T tenant`` (2 tenants -> 6, 4 -> 12).

The functions below generalize to any compartment count and NIC port
count (the Fig. 5 experiments use 2 ports: 2 In/Out VFs per vswitch VM
and 2 gateway VFs per tenant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.core.levels import SecurityLevel
from repro.core.spec import DeploymentSpec
from repro.sriov.nic import MAX_VFS_PER_PF


@dataclass(frozen=True)
class VfBudget:
    """VF counts per role, plus the per-PF feasibility verdict."""

    in_out: int
    gateway: int
    tenant: int
    nic_ports: int

    @property
    def total(self) -> int:
        return self.in_out + self.gateway + self.tenant

    @property
    def per_pf(self) -> int:
        """VFs on each physical port (roles are split evenly per port)."""
        return self.total // self.nic_ports

    def fits(self, max_vfs_per_pf: int = MAX_VFS_PER_PF) -> bool:
        return self.per_pf <= max_vfs_per_pf


def vf_budget(
    level: SecurityLevel,
    num_tenants: int,
    num_vswitch_vms: int = 1,
    nic_ports: int = 1,
) -> VfBudget:
    """VF counts for a configuration (0 in/out + 0 gw for the Baseline,
    which attaches tenants over virtio and owns the ports via the PF)."""
    if num_tenants < 1:
        raise ValidationError("need at least one tenant")
    if nic_ports < 1:
        raise ValidationError("need at least one NIC port")
    if level is SecurityLevel.BASELINE:
        return VfBudget(in_out=0, gateway=0, tenant=0, nic_ports=nic_ports)
    if level is SecurityLevel.LEVEL_1:
        num_vswitch_vms = 1
    elif num_vswitch_vms < 1:
        raise ValidationError("Level-2 needs at least one vswitch VM")
    return VfBudget(
        in_out=num_vswitch_vms * nic_ports,
        gateway=num_tenants * nic_ports,
        tenant=num_tenants * nic_ports,
        nic_ports=nic_ports,
    )


def vf_budget_for_spec(spec: DeploymentSpec) -> VfBudget:
    return vf_budget(
        spec.level,
        num_tenants=spec.num_tenants,
        num_vswitch_vms=max(1, spec.num_compartments),
        nic_ports=spec.nic_ports,
    )


def max_tenants(level: SecurityLevel, nic_ports: int = 1,
                per_tenant_vswitch: bool = False,
                max_vfs_per_pf: int = MAX_VFS_PER_PF) -> int:
    """Largest tenant count whose VF budget still fits per PF -- the
    scaling ceiling the paper's discussion section worries about."""
    tenants = 0
    while True:
        candidate = tenants + 1
        vms = candidate if per_tenant_vswitch else 1
        lvl = SecurityLevel.LEVEL_2 if per_tenant_vswitch else level
        budget = vf_budget(lvl, candidate, num_vswitch_vms=vms,
                           nic_ports=nic_ports)
        if not budget.fits(max_vfs_per_pf):
            return tenants
        tenants = candidate
