"""Static verification of a deployment's control plane.

The paper's motivation for compartmentalization starts with
configuration fragility: "Those sets of flow rules are complex: with a
small error in one rule potentially having security consequences,
e.g., making intra-tenant traffic visible to other tenants."  This
module audits a *built* deployment without sending traffic:

- **reachability**: for every tenant, a representative ingress packet
  symbolically walks the compartment's pipeline and must reach that
  tenant's gateway port with the tenant VF's MAC (the Fig. 3a chain);
- **return path**: a representative packet entering on the gateway
  port must reach an In/Out port;
- **black holes**: rules outputting to ports that do not exist;
- **shadowed rules**: rules that can never fire because an
  earlier/higher-priority rule in the same table covers them;
- **cross-tenant leaks**: tenant A's representative packet must never
  be emitted on tenant B's gateway port (flow-table-level isolation,
  checked rather than hoped for);
- plus the existing cross-tenant **conflict** audit on every table.

The result is an audit report the operator can gate deployments on --
the static complement of the packet-level integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.net.addresses import MacAddress
from repro.net.packet import Frame
from repro.vswitch.actions import ActionType
from repro.vswitch.ovs import OvsBridge

#: A neutral source for representative packets.
_PROBE_SRC = MacAddress.parse("02:99:00:00:00:01")


@dataclass
class Finding:
    severity: str          # "error" | "warning"
    kind: str              # "unreachable", "leak", "black-hole", ...
    bridge: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.kind} @ {self.bridge}: {self.detail}"


@dataclass
class AuditReport:
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.findings:
            return "control-plane audit: clean"
        return "\n".join(str(f) for f in self.findings)


def _walk_pipeline(bridge: OvsBridge, frame: Frame,
                   in_port: int) -> Tuple[Set[int], bool]:
    """Symbolically execute the pipeline for one concrete packet.

    Returns (egress port numbers, dropped_explicitly).  Uses copies so
    counters and the packet itself are untouched.
    """
    probe = frame.copy()
    out_ports: Set[int] = set()
    table_id: Optional[int] = 0
    hops = 0
    while table_id is not None:
        hops += 1
        if hops > OvsBridge.MAX_PIPELINE_DEPTH:
            return out_ports, False
        table = bridge.tables.get(table_id)
        rule = None
        if table is not None:
            for candidate in table:
                if candidate.match.matches(probe, in_port):
                    rule = candidate
                    break
        if rule is None:
            return out_ports, False
        table_id = None
        for action in rule.actions:
            if action.type is ActionType.DROP:
                return out_ports, True
            if action.type is ActionType.OUTPUT:
                out_ports.add(action.port_no)  # type: ignore[attr-defined]
            elif action.type is ActionType.GOTO_TABLE:
                table_id = action.table_id  # type: ignore[attr-defined]
            elif action.type is not ActionType.NORMAL:
                action.apply(probe)
    return out_ports, False


def _probe_for_tenant(deployment: Deployment, tenant: int) -> Frame:
    plan = deployment.plan
    return Frame(
        src_mac=_PROBE_SRC,
        dst_mac=deployment.ingress_dmac_for_tenant(tenant, 0),
        src_ip=plan.external_ip(0),
        dst_ip=plan.tenant_ip(tenant),
        tunnel_id=(plan.vni(tenant) if deployment.spec.tunneling else None),
        size_bytes=114 if deployment.spec.tunneling else 64,
    )


def audit_deployment(deployment: Deployment) -> AuditReport:
    """Run every static check against an MTS deployment."""
    report = AuditReport()
    spec = deployment.spec
    if not spec.level.is_mts:
        _audit_tables_only(deployment, report)
        return report

    for view in deployment.compartment_views:
        bridge = view.bridge
        valid_ports = {p.port_no for p in bridge.ports()}
        gw_ports = {view.gw_port_no[key]: key for key in view.gw_port_no}
        inout_ports = set(view.inout_port_no.values())

        _check_black_holes(bridge, valid_ports, report)
        _check_shadowing(bridge, report)
        _check_conflicts(bridge, report)

        for tenant in view.tenants:
            probe = _probe_for_tenant(deployment, tenant)
            in_port = view.inout_port_no[0]
            outs, dropped = _walk_pipeline(bridge, probe, in_port)
            expected = view.gw_port_no[(tenant, 0)]
            if expected not in outs:
                report.findings.append(Finding(
                    "error", "unreachable", bridge.name,
                    f"tenant {tenant}'s ingress probe never reaches its "
                    f"gateway port {expected} (got {sorted(outs)}, "
                    f"dropped={dropped})"))
            foreign = {p for p in outs
                       if p in gw_ports and gw_ports[p][0] != tenant}
            if foreign:
                leaked_to = sorted({gw_ports[p][0] for p in foreign})
                report.findings.append(Finding(
                    "error", "leak", bridge.name,
                    f"tenant {tenant}'s traffic also emitted on tenant(s) "
                    f"{leaked_to}'s gateway port(s)"))

            # Return path: from the gateway port back out.  The tenant
            # sees the frame decapsulated (the ingress chain popped any
            # tunnel), so the return probe is untunnelled.
            back = probe.copy()
            back.tunnel_id = None
            back.src_mac = deployment.tenant_vf[(tenant, 0)].mac or _PROBE_SRC
            return_port = view.gw_port_no[
                (tenant, deployment.spec.nic_ports - 1)]
            outs, dropped = _walk_pipeline(bridge, back, return_port)
            if not outs & inout_ports and not (
                    deployment.scenario is TrafficScenario.V2V):
                report.findings.append(Finding(
                    "error", "no-return-path", bridge.name,
                    f"tenant {tenant}'s return probe from port "
                    f"{return_port} reaches no In/Out port"))
    return report


def _audit_tables_only(deployment: Deployment, report: AuditReport) -> None:
    for bridge in deployment.bridges:
        valid_ports = {p.port_no for p in bridge.ports()}
        _check_black_holes(bridge, valid_ports, report)
        _check_shadowing(bridge, report)
        _check_conflicts(bridge, report)


def _check_black_holes(bridge: OvsBridge, valid_ports: Set[int],
                       report: AuditReport) -> None:
    for table_id, table in bridge.tables.items():
        for rule in table:
            for action in rule.actions:
                if action.type is ActionType.OUTPUT:
                    port = action.port_no  # type: ignore[attr-defined]
                    if port not in valid_ports:
                        report.findings.append(Finding(
                            "error", "black-hole", bridge.name,
                            f"rule cookie={rule.cookie} outputs to "
                            f"nonexistent port {port}"))
                if (action.type is ActionType.GOTO_TABLE
                        and not len(bridge.tables.get(
                            action.table_id,  # type: ignore[attr-defined]
                            []))):
                    report.findings.append(Finding(
                        "error", "black-hole", bridge.name,
                        f"rule cookie={rule.cookie} jumps to empty "
                        f"table {action.table_id}"))  # type: ignore[attr-defined]


def _check_shadowing(bridge: OvsBridge, report: AuditReport) -> None:
    """A rule is (conservatively) shadowed when an earlier rule at
    >= priority has a match that is no more specific and overlaps it."""
    for table_id, table in bridge.tables.items():
        rules = list(table)
        for i, rule in enumerate(rules):
            for earlier in rules[:i]:
                if earlier.priority < rule.priority:
                    continue
                if (earlier.match.overlaps(rule.match)
                        and earlier.match.specificity()
                        <= rule.match.specificity()
                        and _covers(earlier.match, rule.match)):
                    report.findings.append(Finding(
                        "warning", "shadowed", bridge.name,
                        f"rule cookie={rule.cookie} can never fire: "
                        f"covered by cookie={earlier.cookie} in table "
                        f"{table_id}"))
                    break


def _covers(general, specific) -> bool:
    """True when every field the general match constrains, the specific
    match constrains identically (so general ⊇ specific)."""
    pairs = [
        (general.in_port, specific.in_port),
        (general.src_mac, specific.src_mac),
        (general.dst_mac, specific.dst_mac),
        (general.ethertype, specific.ethertype),
        (general.vlan, specific.vlan),
        (general.proto, specific.proto),
        (general.src_port, specific.src_port),
        (general.dst_port, specific.dst_port),
        (general.tunnel_id, specific.tunnel_id),
    ]
    for g, s in pairs:
        if g is not None and s != g:
            return False
    if general.dst_ip is not None:
        if specific.dst_ip is None:
            return False
        if specific.dst_ip_prefix < general.dst_ip_prefix:
            return False
        if not specific.dst_ip.in_subnet(general.dst_ip,
                                         general.dst_ip_prefix):
            return False
    return True


def _check_conflicts(bridge: OvsBridge, report: AuditReport) -> None:
    for table_id, table in bridge.tables.items():
        for a, b in table.check_conflicts():
            report.findings.append(Finding(
                "error", "cross-tenant-conflict", bridge.name,
                f"tenants {a.tenant_id} and {b.tenant_id} have "
                f"overlapping same-priority rules (cookies {a.cookie}, "
                f"{b.cookie}) in table {table_id}"))
