"""Virtual and physical functions of the SR-IOV NIC.

Only the Host OS driver (the hypervisor, in our model the orchestrator
acting through :class:`repro.sriov.nic.SriovNic`) may configure a VF's
MAC address, VLAN tag or spoof-check bit; the VM attached to a VF gets a
restricted handle that can only send and receive.  This asymmetry is what
lets the NIC act as a reference monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.interfaces import PortPair


class FunctionKind(Enum):
    """Role a function plays in an MTS deployment (paper Fig. 2)."""

    PF = "pf"
    IN_OUT = "in_out"   # vswitch VM <-> external fabric
    GATEWAY = "gw"      # vswitch VM <-> tenant VMs (VLAN-tagged)
    TENANT = "tenant"   # tenant VM's own VF
    UNASSIGNED = "unassigned"


@dataclass
class VfStats:
    rx_frames: int = 0
    tx_frames: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    spoof_drops: int = 0
    filter_drops: int = 0
    rate_limit_drops: int = 0


@dataclass
class VirtualFunction:
    """One SR-IOV function: identity, security config, attachment point.

    ``vlan`` follows VST ("VLAN switch tagging") semantics: frames from
    the VF are tagged with ``vlan`` on NIC ingress and the tag is popped
    on delivery, so the attached VM never sees tags.  ``vlan=None`` puts
    the function in the untagged domain (used for In/Out VFs and the PF).
    """

    index: int
    pf_index: int
    kind: FunctionKind = FunctionKind.UNASSIGNED
    mac: Optional[MacAddress] = None
    vlan: Optional[int] = None
    spoof_check: bool = False
    trusted: bool = False
    #: Hardware ingress rate limit (SR-IOV per-VF QoS; ``ip link set
    #: ... vf N max_tx_rate``).  ``None`` = unlimited.  Enforced by the
    #: NIC as a token bucket at VF ingress.
    max_rate_pps: Optional[float] = None
    attached_to: Optional[str] = None  # VM name, or "host" for the PF
    stats: VfStats = field(default_factory=VfStats)
    port: PortPair = field(init=False)

    def __post_init__(self) -> None:
        # Both name forms are fixed by (pf_index, index); precompute them
        # so the hot-path ``name`` property is a plain attribute pick
        # (it keys the NIC filter memo on every ingress frame).
        self._pf_name = f"pf{self.pf_index}"
        self._vf_name = f"pf{self.pf_index}vf{self.index}"
        self.port = PortPair(self.name)

    @property
    def is_pf(self) -> bool:
        return self.kind == FunctionKind.PF

    @property
    def name(self) -> str:
        if self.kind == FunctionKind.PF:
            return self._pf_name
        return self._vf_name

    @property
    def configured(self) -> bool:
        """A function is usable once it has a MAC and an owner."""
        return self.mac is not None and self.attached_to is not None

    def describe(self) -> str:
        vlan = f" vlan={self.vlan}" if self.vlan is not None else ""
        spoof = " spoofchk" if self.spoof_check else ""
        return (
            f"{self.name} kind={self.kind.value} mac={self.mac}{vlan}{spoof}"
            f" owner={self.attached_to}"
        )
