"""The SR-IOV NIC device: physical ports, PF/VF pools, timing, security.

One :class:`SriovNic` models a dual-port card like the paper's Mellanox
ConnectX-4 LN: each physical port has one PF, up to 64 VFs, and an
embedded VEB switch.  All configuration goes through the host-side API
(MAC, VLAN, spoof check, filters) -- VMs only ever hold a
:class:`~repro.net.interfaces.PortPair` to send and receive, which is
exactly the privilege split SR-IOV provides in hardware.

Timing: every VF crossing pays a PCIe DMA (see
:class:`~repro.sriov.pcie.PcieBus`) and the VEB adds a small cut-through
latency.  The VEB itself forwards at line rate -- the hardware switch is
never the pps bottleneck at 10G, matching the paper's observation that
the extra NIC round trip costs only microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import billing as _billing
from repro import obs as _obs
from repro.errors import ConfigurationError, VFExhaustedError
from repro.net.addresses import MacAddress
from repro.net.interfaces import Port
from repro.net.link import Link
from repro.net.packet import Frame, FrameBatch
from repro.sim.kernel import Simulator
from repro.sriov.filters import FilterAction, FilterChain, SpoofCheck, WildcardFilter
from repro.sriov.pcie import PcieBus
from repro.sriov.switch import UNTAGGED, UPLINK, VebSwitch
from repro.sriov.vf import FunctionKind, VirtualFunction
from repro.units import USEC

#: Cut-through latency of the embedded hardware switch.
VEB_LATENCY = 0.3 * USEC

#: Per-SR-IOV-standard ceiling the paper cites (Section 3.2).
MAX_VFS_PER_PF = 64


@dataclass
class NicDropStats:
    spoof: int = 0
    filtered: int = 0
    no_destination: int = 0
    unconfigured_vf: int = 0
    rate_limited: int = 0


@dataclass
class _TokenBucket:
    """Per-VF ingress policer (hardware rate limiting)."""

    rate_pps: float
    burst: float = 32.0
    tokens: float = 32.0
    last_refill: float = 0.0

    def allow(self, now: float) -> bool:
        self.tokens = min(self.burst,
                          self.tokens + (now - self.last_refill) * self.rate_pps)
        self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class NicPort:
    """One physical port: a PF, its VFs, a VEB switch and the fabric."""

    def __init__(self, nic: "SriovNic", index: int) -> None:
        self.nic = nic
        self.index = index
        #: Hop label, hoisted: built once instead of per packet.
        self._label = f"nic.p{index}"
        self._fabric_in_stamp = f"nic.p{index}.fabric.in"
        self._fabric_out_stamp = f"nic.p{index}.fabric.out"
        #: Per-function stamp labels, built on first use.
        self._in_stamps: Dict[str, str] = {}
        self._out_stamps: Dict[str, str] = {}
        self.veb = VebSwitch(name=f"veb{index}")
        self.pf = VirtualFunction(index=-1, pf_index=index, kind=FunctionKind.PF,
                                  attached_to="host")
        self.vfs: List[VirtualFunction] = []
        self.fabric_rx = Port(f"nic.p{index}.fabric", self._receive_from_fabric)
        self.fabric_rx.connect_batch(self._receive_from_fabric_batch)
        self.fabric_link: Optional[Link] = None
        self.drops = NicDropStats()
        self.frames_switched = 0
        self._functions: Dict[str, VirtualFunction] = {self.pf.name: self.pf}
        self._vf_counter = 0
        self._buckets: Dict[str, _TokenBucket] = {}
        #: Bumped when per-VF policers change; paired with the VEB's
        #: ``epoch`` to revalidate cached flush-margin decisions.
        self.policer_epoch = 0
        self.veb.attach(self.pf)

    # -- host-side configuration API -------------------------------------

    def create_vf(self) -> VirtualFunction:
        """Instantiate a new VF (host privilege)."""
        if len(self.vfs) >= self.nic.max_vfs_per_pf:
            raise VFExhaustedError(
                f"PF {self.index} already has {len(self.vfs)} VFs "
                f"(max {self.nic.max_vfs_per_pf})"
            )
        vf = VirtualFunction(index=self._vf_counter, pf_index=self.index)
        self._vf_counter += 1
        self.vfs.append(vf)
        self._functions[vf.name] = vf
        vf.port.attach_tx(lambda frame, vf=vf: self._receive_from_vf(vf, frame))
        vf.port.attach_tx_batch(
            lambda batch, vf=vf: self._receive_from_vf_batch(vf, batch))
        return vf

    def configure_vf(
        self,
        vf: VirtualFunction,
        mac: MacAddress,
        vlan: Optional[int] = None,
        spoof_check: bool = False,
        kind: FunctionKind = FunctionKind.UNASSIGNED,
    ) -> None:
        """Set a VF's identity; re-configuring re-homes its VLAN domain."""
        if vf.name not in self._functions:
            raise ConfigurationError(f"{vf.name} does not belong to PF {self.index}")
        self.veb.detach(vf)
        vf.mac = mac
        vf.vlan = vlan
        vf.spoof_check = spoof_check
        vf.kind = kind
        self.veb.attach(vf)

    def attach_vf(self, vf: VirtualFunction, owner: str) -> None:
        """Hand the VF to a VM (by name).  The VM keeps ``vf.port``."""
        if vf.attached_to is not None:
            raise ConfigurationError(f"{vf.name} already attached to {vf.attached_to}")
        vf.attached_to = owner

    def set_vf_rate_limit(self, vf: VirtualFunction,
                          max_rate_pps: Optional[float]) -> None:
        """Program the per-VF hardware policer (``ip link set ... vf N
        max_tx_rate`` equivalent); ``None`` removes it."""
        if vf.name not in self._functions:
            raise ConfigurationError(f"{vf.name} does not belong to PF {self.index}")
        vf.max_rate_pps = max_rate_pps
        self.policer_epoch += 1
        if max_rate_pps is None:
            self._buckets.pop(vf.name, None)
        else:
            if max_rate_pps <= 0:
                raise ConfigurationError("rate limit must be positive")
            self._buckets[vf.name] = _TokenBucket(
                rate_pps=max_rate_pps, last_refill=self.nic.sim.now)

    def destroy_vf(self, vf: VirtualFunction) -> None:
        """Remove a single VF (runtime tenant removal/migration)."""
        if vf not in self.vfs:
            raise ConfigurationError(f"{vf.name} not on PF {self.index}")
        self.veb.detach(vf)
        self.vfs.remove(vf)
        del self._functions[vf.name]
        self._buckets.pop(vf.name, None)
        vf.attached_to = None

    def detach_all(self) -> None:
        """Tear down all VFs (deployment teardown)."""
        for vf in self.vfs:
            self.veb.detach(vf)
        self.vfs.clear()
        self._functions = {self.pf.name: self.pf}
        self.veb.attach(self.pf)

    def connect_fabric(self, link: Link) -> None:
        """Attach the outbound wire (towards the load generator / sink)."""
        self.fabric_link = link

    def function(self, name: str) -> VirtualFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise ConfigurationError(f"no function {name!r} on PF {self.index}") from None

    # -- dataplane ---------------------------------------------------------

    def _in_stamp(self, name: str) -> str:
        label = self._in_stamps.get(name)
        if label is None:
            label = self._in_stamps[name] = f"nic.p{self.index}.{name}.in"
        return label

    def _out_stamp(self, name: str) -> str:
        label = self._out_stamps.get(name)
        if label is None:
            label = self._out_stamps[name] = f"nic.p{self.index}.{name}.out"
        return label

    def _receive_from_vf(self, vf: VirtualFunction, frame: Frame) -> None:
        """VM transmitted on its VF: security chain, then switch."""
        vf.stats.tx_frames += 1
        vf.stats.tx_bytes += frame.wire_size()
        if vf.mac is None:
            self.drops.unconfigured_vf += 1
            _obs.TRACER.nic_filter(self._label, vf.name, frame,
                                   "unconfigured")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id, "nic_unconfigured")
            return
        if not SpoofCheck.permits(vf, frame):
            vf.stats.spoof_drops += 1
            self.drops.spoof += 1
            _obs.TRACER.nic_filter(self._label, vf.name, frame,
                                   "spoof_drop")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id, "nic_spoof")
            return
        bucket = self._buckets.get(vf.name)
        if bucket is not None and not bucket.allow(self.nic.sim.now):
            vf.stats.rate_limit_drops += 1
            self.drops.rate_limited += 1
            _obs.TRACER.nic_filter(self._label, vf.name, frame,
                                   "rate_limited")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id, "nic_rate_limited")
            return
        if self.nic.filters.evaluate(vf, frame) == FilterAction.DROP:
            vf.stats.filter_drops += 1
            self.drops.filtered += 1
            _obs.TRACER.nic_filter(self._label, vf.name, frame,
                                   "filter_drop")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id, "nic_filtered")
            return
        _obs.TRACER.nic_filter(self._label, vf.name, frame, "pass")
        frame.stamp(self._in_stamp(vf.name))
        domain = self.veb.domain_of(vf)
        # VM -> NIC DMA has already been paid conceptually by the VM's
        # transmit; we charge the crossing once here (ingress direction).
        delay = (self.nic.pcie.transfer_time(frame.wire_size(),
                                             tenant=frame.tenant_id)
                 + VEB_LATENCY)
        frame.charge("nic", delay)
        self.nic.sim.call_later(delay, self._switch, vf.name, domain, frame)

    def _receive_from_fabric(self, frame: Frame) -> None:
        """Frame arrived from the wire."""
        frame.stamp(self._fabric_in_stamp)
        domain = frame.vlan if frame.vlan is not None else UNTAGGED
        frame.charge("nic", VEB_LATENCY)
        self.nic.sim.call_later(VEB_LATENCY, self._switch, UPLINK, domain, frame)

    def _switch(self, ingress: str, domain: int, frame: Frame) -> None:
        decision = self.veb.forward(ingress, domain, frame, now=self.nic.sim.now)
        if not decision.destinations:
            self.drops.no_destination += 1
            _obs.TRACER.drop(self._label, frame,
                             "no_destination" if decision.reason != "hairpin"
                             else "hairpin")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id, "nic_no_destination")
            return
        self.frames_switched += 1
        for dest in decision.destinations:
            out = frame if len(decision.destinations) == 1 else frame.copy()
            if dest == UPLINK:
                self._to_fabric(domain, out)
            else:
                self._to_function(self._functions[dest], out)

    def _to_fabric(self, domain: int, frame: Frame) -> None:
        if self.fabric_link is None:
            self.drops.no_destination += 1
            _obs.TRACER.drop(self._label, frame, "no_fabric_link")
            return
        # Untagged-domain frames leave untagged; tagged domains keep the
        # 802.1Q tag on the wire.
        if domain != UNTAGGED and frame.vlan is None:
            frame.push_vlan(domain)
        elif domain == UNTAGGED and frame.vlan is not None:
            frame.pop_vlan()
        frame.stamp(self._fabric_out_stamp)
        self.fabric_link.send(frame)

    def _to_function(self, func: VirtualFunction, frame: Frame) -> None:
        """Deliver to the VM behind a VF/PF (access egress: tag popped)."""
        if frame.vlan is not None:
            frame.pop_vlan()
        func.stats.rx_frames += 1
        func.stats.rx_bytes += frame.wire_size()
        frame.stamp(self._out_stamp(func.name))
        delay = self.nic.pcie.transfer_time(frame.wire_size(),
                                            tenant=frame.tenant_id)
        frame.charge("nic", delay)
        self.nic.sim.call_later(delay, func.port.rx.receive, frame)

    # -- batched dataplane -------------------------------------------------
    #
    # Same chain, one call per batch: the security verdict, VEB decision
    # and PCIe/VEB delays are identical for every member (same headers,
    # same size), so they are computed once and the member timestamps
    # advanced analytically.  No events are scheduled -- the batch flows
    # inline to the next timestamped admission point (bridge rx ring) or
    # to the fabric link.  Runs only with tracing off; per-frame hop
    # stamps and latency charges are not maintained (the per-frame
    # oracle remains the reference for those).

    def _receive_from_vf_batch(self, vf: VirtualFunction,
                               batch: FrameBatch) -> None:
        bucket = self._buckets.get(vf.name)
        if bucket is not None:
            # The policer is stateful in arrival time: replay members
            # as individual events at their own timestamps (exact).
            sim = self.nic.sim
            for i, t in enumerate(batch.ts):
                sim.schedule(t, self._receive_from_vf, vf, batch.frame_at(i))
            return
        n = len(batch)
        frame = batch.frame
        wire = frame.wire_size()
        vf.stats.tx_frames += n
        vf.stats.tx_bytes += wire * n
        meter = _billing.METER
        if vf.mac is None:
            self.drops.unconfigured_vf += n
            if meter.enabled:
                meter.drop(frame.tenant_id, "nic_unconfigured", n)
            return
        if not SpoofCheck.permits(vf, frame):
            vf.stats.spoof_drops += n
            self.drops.spoof += n
            if meter.enabled:
                meter.drop(frame.tenant_id, "nic_spoof", n)
            return
        if self.nic.filters.evaluate_batch(vf, frame, n) == FilterAction.DROP:
            vf.stats.filter_drops += n
            self.drops.filtered += n
            if meter.enabled:
                meter.drop(frame.tenant_id, "nic_filtered", n)
            return
        domain = self.veb.domain_of(vf)
        delay = (self.nic.pcie.transfer_time_batch(wire, frame.tenant_id, n)
                 + VEB_LATENCY)
        batch.advance(delay)
        self._switch_batch(vf.name, domain, batch)

    def _receive_from_fabric_batch(self, batch: FrameBatch) -> None:
        frame = batch.frame
        domain = frame.vlan if frame.vlan is not None else UNTAGGED
        batch.advance(VEB_LATENCY)
        self._switch_batch(UPLINK, domain, batch)

    def _switch_batch(self, ingress: str, domain: int,
                      batch: FrameBatch) -> None:
        n = len(batch)
        decision = self.veb.forward_batch(ingress, domain, batch.frame,
                                          now=batch.ts[-1], n=n)
        dests = decision.destinations
        if not dests:
            self.drops.no_destination += n
            if _billing.METER.enabled:
                _billing.METER.drop(batch.frame.tenant_id,
                                    "nic_no_destination", n)
            return
        self.frames_switched += n
        if len(dests) == 1:
            outs = [batch]
        else:
            # The per-frame path copies for *every* destination when
            # there are several (the original is abandoned); mirror its
            # id draws exactly.
            outs = batch.fanout_copies(len(dests))
        for dest, out in zip(dests, outs):
            if dest == UPLINK:
                self._to_fabric_batch(domain, out)
            else:
                self._to_function_batch(self._functions[dest], out)

    def _to_fabric_batch(self, domain: int, batch: FrameBatch) -> None:
        if self.fabric_link is None:
            self.drops.no_destination += len(batch)
            return
        frame = batch.frame
        if domain != UNTAGGED and frame.vlan is None:
            frame.push_vlan(domain)
        elif domain == UNTAGGED and frame.vlan is not None:
            frame.pop_vlan()
        self.fabric_link.send_batch(batch)

    def _to_function_batch(self, func: VirtualFunction,
                           batch: FrameBatch) -> None:
        frame = batch.frame
        if frame.vlan is not None:
            frame.pop_vlan()
        n = len(batch)
        wire = frame.wire_size()
        func.stats.rx_frames += n
        func.stats.rx_bytes += wire * n
        batch.advance(
            self.nic.pcie.transfer_time_batch(wire, frame.tenant_id, n))
        func.port.rx.receive_batch(batch, self.nic.sim)


class SriovNic:
    """A multi-port SR-IOV NIC with a shared PCIe bus and filter table."""

    def __init__(
        self,
        sim: Simulator,
        num_ports: int = 2,
        max_vfs_per_pf: int = MAX_VFS_PER_PF,
        pcie: Optional[PcieBus] = None,
        name: str = "nic0",
    ) -> None:
        if num_ports < 1:
            raise ConfigurationError("a NIC needs at least one physical port")
        if not 1 <= max_vfs_per_pf <= MAX_VFS_PER_PF:
            raise ConfigurationError(
                f"max_vfs_per_pf must be in [1, {MAX_VFS_PER_PF}]"
            )
        self.sim = sim
        self.name = name
        self.max_vfs_per_pf = max_vfs_per_pf
        self.pcie = pcie if pcie is not None else PcieBus()
        self.filters = FilterChain()
        self.ports = [NicPort(self, i) for i in range(num_ports)]

    def port(self, index: int) -> NicPort:
        return self.ports[index]

    def install_filter(self, flt: WildcardFilter) -> None:
        self.filters.install(flt)

    def total_vfs(self) -> int:
        return sum(len(p.vfs) for p in self.ports)

    def total_drops(self) -> NicDropStats:
        agg = NicDropStats()
        for port in self.ports:
            agg.spoof += port.drops.spoof
            agg.filtered += port.drops.filtered
            agg.no_destination += port.drops.no_destination
            agg.unconfigured_vf += port.drops.unconfigured_vf
            agg.rate_limited += port.drops.rate_limited
        return agg
