"""PCIe bus model.

The paper's discussion section (quoting Neugebauer et al., SIGCOMM'18)
notes that a typical x8 PCIe 3.0 NIC has an effective bi-directional
bandwidth of roughly 50 Gbps, and that MTS's extra NIC round trips make
the PCIe bus a potential bottleneck at 40/100G.  We model the bus as a
shared bandwidth pool with a small per-transfer (DMA + doorbell) latency,
so experiments can sweep lane counts and generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro import billing as _billing
from repro.units import GBPS, USEC


class PcieGen(Enum):
    """PCIe generation with per-lane effective data rate.

    Values are *effective* (post-encoding) per-lane rates in Gbps; the
    usable fraction below additionally accounts for TLP header overhead at
    a 256 B maximum payload size, following Neugebauer et al.
    """

    GEN3 = 7.877
    GEN4 = 15.754

    @property
    def per_lane_bps(self) -> float:
        return self.value * GBPS


#: Fraction of raw PCIe bandwidth usable for payload with 256 B MPS
#: (TLP header 24 B per 256 B payload, plus flow-control DLLPs).
USABLE_FRACTION = 0.8

#: One-way DMA latency for a small transfer (doorbell + descriptor fetch
#: + payload write), per Neugebauer et al.'s sub-microsecond measurements.
DMA_LATENCY = 0.9 * USEC


@dataclass
class PcieBus:
    """A PCIe endpoint's link: ``lanes`` x ``gen``, shared by all VFs.

    The bus tracks cumulative bytes so experiments can report utilization;
    :meth:`transfer_time` gives the per-frame DMA cost used by the DES,
    and :meth:`effective_bandwidth_bps` the capacity bound used by the
    analytic model.
    """

    gen: PcieGen = PcieGen.GEN3
    lanes: int = 8
    bytes_transferred: int = 0

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid PCIe lane count: {self.lanes}")

    def effective_bandwidth_bps(self) -> float:
        """Usable one-direction payload bandwidth in bits/s.

        x8 Gen3 comes out at ~50 Gbps, matching the figure the paper
        quotes for the usable bi-directional bandwidth of a typical NIC.
        """
        return self.gen.per_lane_bps * self.lanes * USABLE_FRACTION

    def transfer_time(self, size_bytes: int,
                      tenant: Optional[int] = None) -> float:
        """DMA one frame across the bus: latency + serialization.

        ``tenant`` attributes the crossing to a tenant when metering is
        on; timing is unaffected.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        self.bytes_transferred += size_bytes
        if _billing.METER.enabled and tenant is not None:
            _billing.METER.pcie(tenant, size_bytes)
        return DMA_LATENCY + size_bytes * 8.0 / self.effective_bandwidth_bps()

    def transfer_time_batch(self, size_bytes: int, tenant: Optional[int],
                            n: int) -> float:
        """Batched :meth:`transfer_time`: ``n`` same-size crossings.

        Each member pays the same DMA + serialization delay (returned
        once); byte accounting and metering cover all ``n``.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        total = size_bytes * n
        self.bytes_transferred += total
        if _billing.METER.enabled and tenant is not None:
            _billing.METER.pcie(tenant, total)
        return DMA_LATENCY + size_bytes * 8.0 / self.effective_bandwidth_bps()

    def capacity_pps(self, frame_bytes: int) -> float:
        """Frames/s the bus sustains at a given frame size (per direction)."""
        return self.effective_bandwidth_bps() / (frame_bytes * 8.0)
