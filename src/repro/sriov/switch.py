"""The NIC's embedded L2 switch (IEEE Virtual Ethernet Bridging).

Forwarding model, following the paper's ingress/egress chains (Fig. 3):

- Every function (PF or VF) is an *access* member of exactly one VLAN
  domain: its configured ``vlan`` tag, or the untagged domain.
- On ingress from a function the NIC pushes the function's VLAN tag (VST)
  and looks up the destination MAC in that domain's table.
- On egress to an access function the tag is popped; on egress to the
  physical fabric port the frame keeps whatever tag its domain implies
  (untagged domain frames leave untagged).
- MAC tables hold *static* entries (installed when the host configures a
  VF's MAC) plus learned entries; unknown unicast goes to the fabric
  uplink (the standard VEB behaviour -- edge filters are what keep
  tenants from abusing this), broadcast floods the domain.

The switch is pure forwarding logic; the owning
:class:`repro.sriov.nic.SriovNic` adds timing (PCIe, switch latency) and
security filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.net.addresses import MacAddress
from repro.net.packet import Frame
from repro.sriov.vf import VirtualFunction

#: Sentinel VLAN id for the untagged domain.
UNTAGGED = 0

#: Sentinel destination meaning "out the physical fabric port".
UPLINK = "uplink"


@dataclass
class MacEntry:
    dest: str  # function name or UPLINK
    static: bool = False
    last_seen: float = 0.0


@dataclass
class ForwardingDecision:
    """Where a frame goes: a list of function names and/or UPLINK."""

    destinations: List[str] = field(default_factory=list)
    flooded: bool = False
    reason: str = "hit"


#: Bound on the VEB's cached forwarding decisions.
DECISION_CACHE_CAPACITY = 65536


class VebSwitch:
    """Per-physical-port VEB: VLAN domains with MAC learning tables.

    Forwarding decisions are memoized per ``(ingress, vlan, src_mac,
    dst_mac)`` -- the exact-match-cache shape of the vswitch fast path,
    applied to the hardware switch.  The cache is flushed whenever the
    MAC table or domain membership actually changes (a learn that
    installs or re-homes an entry, ``attach``/``detach``); pure
    ``last_seen`` refreshes keep it warm.  Counters (``lookups``,
    ``floods``, ``unknown_unicasts``) stay exact on cached hits.
    """

    def __init__(self, name: str = "veb") -> None:
        self.name = name
        # (vlan, mac) -> entry
        self._table: Dict[Tuple[int, MacAddress], MacEntry] = {}
        # vlan -> member function names (access members)
        self._members: Dict[int, List[str]] = {}
        self.lookups = 0
        self.floods = 0
        self.unknown_unicasts = 0
        self.forwards = 0
        # (ingress, vlan, src_mac, dst_mac) ->
        #   (destinations, flooded, reason, lookup/flood/unknown deltas)
        self._decisions: Dict[Tuple, Tuple] = {}
        self.decision_cache_hits = 0
        #: Bumped whenever forwarding *content* changes (attach/detach,
        #: a learn that installs or re-homes an entry).  Lets callers
        #: cache derived facts -- e.g. the batched fast path's flush
        #: margins -- and revalidate with one int compare.
        self.epoch = 0

    # -- membership & static entries ------------------------------------

    @staticmethod
    def domain_of(vf: VirtualFunction) -> int:
        return vf.vlan if vf.vlan is not None else UNTAGGED

    def attach(self, vf: VirtualFunction) -> None:
        """Make a function an access member of its VLAN domain and pin a
        static MAC entry for it (hardware installs these on VF config)."""
        domain = self.domain_of(vf)
        members = self._members.setdefault(domain, [])
        if vf.name not in members:
            members.append(vf.name)
        if vf.mac is not None:
            self._table[(domain, vf.mac)] = MacEntry(dest=vf.name, static=True)
        self._decisions.clear()
        self.epoch += 1

    def detach(self, vf: VirtualFunction) -> None:
        """Remove a function from its domain (before re-configuring it)."""
        domain = self.domain_of(vf)
        members = self._members.get(domain, [])
        if vf.name in members:
            members.remove(vf.name)
        stale = [key for key, entry in self._table.items()
                 if entry.dest == vf.name]
        for key in stale:
            del self._table[key]
        self._decisions.clear()
        self.epoch += 1

    def members(self, vlan: int) -> List[str]:
        return list(self._members.get(vlan, []))

    # -- learning & lookup ------------------------------------------------

    def learn(self, vlan: int, mac: MacAddress, dest: str, now: float = 0.0) -> bool:
        """Learn a dynamic entry; static entries are never displaced."""
        key = (vlan, mac)
        existing = self._table.get(key)
        if existing is not None and existing.static:
            return False
        if existing is not None and existing.dest == dest:
            # Pure refresh: the table's forwarding content is unchanged,
            # so cached decisions stay valid.
            existing.last_seen = now
            return True
        self._table[key] = MacEntry(dest=dest, static=False, last_seen=now)
        self._decisions.clear()
        self.epoch += 1
        return True

    def lookup(self, vlan: int, mac: MacAddress) -> Optional[MacEntry]:
        self.lookups += 1
        return self._table.get((vlan, mac))

    def table_size(self) -> int:
        return len(self._table)

    # -- forwarding ---------------------------------------------------------

    def forward(self, ingress: str, vlan: int, frame: Frame,
                now: float = 0.0) -> ForwardingDecision:
        """Decide egress for a frame that entered domain ``vlan`` from
        ``ingress`` (a function name or :data:`UPLINK`)."""
        self.forwards += 1
        key = (ingress, vlan, frame.src_mac, frame.dst_mac)
        cached = self._decisions.get(key)
        if cached is not None:
            dests, flooded, reason, d_lookups, d_floods, d_unknown = cached
            self.decision_cache_hits += 1
            self.lookups += d_lookups
            self.floods += d_floods
            self.unknown_unicasts += d_unknown
            # The source entry was learned when this decision was cached
            # (any change since would have flushed); refresh its age.
            entry = self._table.get((vlan, frame.src_mac))
            if entry is not None and not entry.static:
                entry.last_seen = now
            decision = ForwardingDecision(destinations=list(dests),
                                          flooded=flooded, reason=reason)
            _obs.TRACER.veb_forward(self.name, frame, ingress, vlan, decision)
            return decision
        before = (self.lookups, self.floods, self.unknown_unicasts)
        decision = self._forward_uncached(ingress, vlan, frame, now)
        if len(self._decisions) >= DECISION_CACHE_CAPACITY:
            self._decisions.pop(next(iter(self._decisions)))
        self._decisions[key] = (
            tuple(decision.destinations), decision.flooded, decision.reason,
            self.lookups - before[0], self.floods - before[1],
            self.unknown_unicasts - before[2])
        _obs.TRACER.veb_forward(self.name, frame, ingress, vlan, decision)
        return decision

    def forward_batch(self, ingress: str, vlan: int, frame: Frame,
                      now: float, n: int) -> ForwardingDecision:
        """One decision for ``n`` identical-header frames.

        Counters replicate ``n`` sequential :meth:`forward` calls: the
        uncached walk's deltas equal the cached deltas it installs, so
        totals scale by ``n`` either way; only ``decision_cache_hits``
        distinguishes the first (miss) frame.  ``now`` should be the
        *last* member's timestamp -- it only feeds ``last_seen`` aging.
        """
        self.forwards += n
        key = (ingress, vlan, frame.src_mac, frame.dst_mac)
        cached = self._decisions.get(key)
        if cached is not None:
            dests, flooded, reason, d_lookups, d_floods, d_unknown = cached
            self.decision_cache_hits += n
            self.lookups += d_lookups * n
            self.floods += d_floods * n
            self.unknown_unicasts += d_unknown * n
            entry = self._table.get((vlan, frame.src_mac))
            if entry is not None and not entry.static:
                entry.last_seen = now
            return ForwardingDecision(destinations=list(dests),
                                      flooded=flooded, reason=reason)
        before = (self.lookups, self.floods, self.unknown_unicasts)
        decision = self._forward_uncached(ingress, vlan, frame, now)
        deltas = (self.lookups - before[0], self.floods - before[1],
                  self.unknown_unicasts - before[2])
        if len(self._decisions) >= DECISION_CACHE_CAPACITY:
            self._decisions.pop(next(iter(self._decisions)))
        self._decisions[key] = (
            tuple(decision.destinations), decision.flooded, decision.reason,
            *deltas)
        rest = n - 1
        if rest:
            self.decision_cache_hits += rest
            self.lookups += deltas[0] * rest
            self.floods += deltas[1] * rest
            self.unknown_unicasts += deltas[2] * rest
        return decision

    def peek_destinations(self, ingress: str, vlan: int,
                          frame: Frame) -> List[str]:
        """Side-effect-free preview of :meth:`forward`'s destinations.

        No learning, no counters, no cache insert -- used by the batched
        fast path to bound how far a flushed sub-batch travels before
        the next timestamped admission point.  May differ from the next
        real ``forward`` only in that the source is not yet learned
        (which can only *narrow* a later decision, never widen it).
        """
        if frame.dst_mac.is_multicast:
            dests = [m for m in self._members.get(vlan, []) if m != ingress]
            if ingress != UPLINK:
                dests.append(UPLINK)
            return dests
        entry = self._table.get((vlan, frame.dst_mac))
        if entry is not None:
            return [] if entry.dest == ingress else [entry.dest]
        if ingress == UPLINK:
            return [m for m in self._members.get(vlan, []) if m != ingress]
        return [UPLINK]

    def _forward_uncached(self, ingress: str, vlan: int, frame: Frame,
                          now: float = 0.0) -> ForwardingDecision:
        """The uncached forwarding walk (also the fuzz-test oracle)."""
        # Learn the source everywhere, including the uplink -- replies
        # then unicast to the wire instead of flooding.
        self.learn(vlan, frame.src_mac, ingress, now)

        if frame.dst_mac.is_multicast:
            return self._flood(ingress, vlan, reason="multicast")

        entry = self.lookup(vlan, frame.dst_mac)
        if entry is not None:
            if entry.dest == ingress:
                # Hairpin to self: a VEB drops these (no reflection).
                return ForwardingDecision(destinations=[], reason="hairpin")
            return ForwardingDecision(destinations=[entry.dest], reason="hit")

        self.unknown_unicasts += 1
        if ingress == UPLINK:
            # Unknown unicast from the wire: flood the domain (the NIC has
            # no port to learn it towards yet).
            return self._flood(ingress, vlan, reason="unknown_from_uplink")
        # Unknown unicast from a VF: send to the wire, as a VEB does.
        return ForwardingDecision(destinations=[UPLINK], reason="unknown_to_uplink")

    def _flood(self, ingress: str, vlan: int, reason: str) -> ForwardingDecision:
        self.floods += 1
        dests = [m for m in self._members.get(vlan, []) if m != ingress]
        if ingress != UPLINK:
            dests.append(UPLINK)
        return ForwardingDecision(destinations=dests, flooded=True, reason=reason)
