"""NIC security filters: source-MAC anti-spoofing and wildcard rules.

The paper's "System support" subsection requires the operator to (i)
enable source MAC address spoofing prevention on all tenant VFs and (ii)
optionally install flow-based wildcard filters in the NIC -- e.g. drop
packets not destined to the tenant's vswitch compartment, or prevent the
Host PF from receiving tenant frames.  Both are modelled here and applied
by the NIC on every VF ingress.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.net.addresses import MacAddress
from repro.net.packet import Frame
from repro.sriov.vf import VirtualFunction


class FilterAction(Enum):
    ALLOW = "allow"
    DROP = "drop"


class FilterVerdict(Enum):
    """Outcome of running a frame through the ingress security chain."""

    PASS = "pass"
    SPOOF_DROP = "spoof_drop"
    FILTER_DROP = "filter_drop"


class SpoofCheck:
    """Source-MAC anti-spoofing: frames must carry the VF's own MAC."""

    @staticmethod
    def permits(vf: VirtualFunction, frame: Frame) -> bool:
        if not vf.spoof_check:
            return True
        return vf.mac is not None and frame.src_mac == vf.mac


@dataclass
class WildcardFilter:
    """A single NIC flow filter; ``None`` fields are wildcards.

    Matching is on the frame as seen at VF ingress (before VST tagging),
    plus the ingress function itself, so operators can write rules like
    "frames from tenant VFs may only go to the gateway VF's MAC".
    """

    action: FilterAction
    priority: int = 0
    ingress_vf: Optional[str] = None
    src_mac: Optional[MacAddress] = None
    dst_mac: Optional[MacAddress] = None
    vlan: Optional[int] = None
    name: str = "filter"

    def matches(self, vf: VirtualFunction, frame: Frame) -> bool:
        if self.ingress_vf is not None and vf.name != self.ingress_vf:
            return False
        if self.src_mac is not None and frame.src_mac != self.src_mac:
            return False
        if self.dst_mac is not None and frame.dst_mac != self.dst_mac:
            return False
        if self.vlan is not None and vf.vlan != self.vlan:
            return False
        return True


class FilterChain:
    """Ordered wildcard filters with a default action.

    Highest priority wins; ties break in installation order (stable sort),
    mirroring how NIC flow tables behave.  The default is ALLOW because
    the NIC's isolation primitive is the VLAN/MAC forwarding itself; the
    filters are the extra, operator-installed guard rails.
    """

    #: Bound on memoized verdicts.
    MEMO_CAPACITY = 65536

    def __init__(self, default: FilterAction = FilterAction.ALLOW) -> None:
        self.default = default
        self._filters: List[WildcardFilter] = []
        self.evaluations = 0
        self.drops = 0
        self.memo_hits = 0
        # Verdicts depend only on (vf.name, vf.vlan, src_mac, dst_mac) --
        # everything WildcardFilter.matches can see -- so the chain walk
        # is memoized per that key and flushed on install/remove.
        self._memo: dict = {}
        #: Bumped whenever the rule set changes; cached route decisions
        #: elsewhere key their validity on it.
        self.epoch = 0

    def install(self, flt: WildcardFilter) -> None:
        self._filters.append(flt)
        self._filters.sort(key=lambda f: -f.priority)
        self._memo.clear()
        self.epoch += 1

    def remove(self, name: str) -> int:
        """Remove all filters with the given name; returns the count."""
        before = len(self._filters)
        self._filters = [f for f in self._filters if f.name != name]
        self._memo.clear()
        self.epoch += 1
        return before - len(self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    def peek(self, vf: VirtualFunction, frame: Frame) -> FilterAction:
        """Side-effect-free verdict preview (no counters, no memo writes).

        Route discovery asks "would this frame pass?" without simulating
        an actual ingress; the real evaluation still happens (in batched
        form) when traffic flows.
        """
        for flt in self._filters:
            if flt.matches(vf, frame):
                return flt.action
        return self.default

    def evaluate(self, vf: VirtualFunction, frame: Frame) -> FilterAction:
        """First matching filter decides; otherwise the default applies."""
        self.evaluations += 1
        key = (vf.name, vf.vlan, frame.src_mac, frame.dst_mac)
        action = self._memo.get(key)
        if action is not None:
            self.memo_hits += 1
        else:
            action = self.default
            for flt in self._filters:
                if flt.matches(vf, frame):
                    action = flt.action
                    break
            if len(self._memo) >= self.MEMO_CAPACITY:
                self._memo.pop(next(iter(self._memo)))
            self._memo[key] = action
        if action == FilterAction.DROP:
            self.drops += 1
        return action

    def evaluate_batch(self, vf: VirtualFunction, frame: Frame,
                       n: int) -> FilterAction:
        """One verdict for ``n`` identical-header frames.

        Counter bumps replicate ``n`` sequential :meth:`evaluate` calls
        exactly: on a memo miss the first frame walks the chain and the
        remaining ``n - 1`` hit the memo.
        """
        self.evaluations += n
        key = (vf.name, vf.vlan, frame.src_mac, frame.dst_mac)
        action = self._memo.get(key)
        if action is not None:
            self.memo_hits += n
        else:
            action = self.default
            for flt in self._filters:
                if flt.matches(vf, frame):
                    action = flt.action
                    break
            if len(self._memo) >= self.MEMO_CAPACITY:
                self._memo.pop(next(iter(self._memo)))
            self._memo[key] = action
            self.memo_hits += n - 1
        if action == FilterAction.DROP:
            self.drops += n
        return action
