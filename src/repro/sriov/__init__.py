"""SR-IOV NIC model: PF/VFs, embedded VEB L2 switch, filters, PCIe.

This package is the trusted hardware mediator of the MTS design: every
tenant-to-vswitch, vswitch-to-external and tenant-to-host frame crosses
the NIC's embedded L2 switch (IEEE Virtual Ethernet Bridging), which
forwards on (VLAN, destination MAC), enforces source-MAC anti-spoofing
and operator-installed wildcard filters, and pays a PCIe round trip per
crossing.
"""

from repro.sriov.filters import FilterAction, FilterVerdict, SpoofCheck, WildcardFilter, FilterChain
from repro.sriov.nic import SriovNic
from repro.sriov.pcie import PcieBus, PcieGen
from repro.sriov.switch import VebSwitch, UNTAGGED
from repro.sriov.vf import FunctionKind, VirtualFunction

__all__ = [
    "FilterAction",
    "FilterVerdict",
    "SpoofCheck",
    "WildcardFilter",
    "FilterChain",
    "SriovNic",
    "PcieBus",
    "PcieGen",
    "VebSwitch",
    "UNTAGGED",
    "FunctionKind",
    "VirtualFunction",
]
