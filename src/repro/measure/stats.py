"""Summary statistics without external dependencies.

The paper reports means with 95% confidence over 5 repetitions and
latency distributions (box plots).  These helpers provide exactly
those reductions: percentiles by linear interpolation (numpy's default
method) and Student-t confidence intervals for small samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

#: Two-sided 95% Student-t critical values, indexed by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042, 60: 2.000, 120: 1.980,
}


def _t95(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    if dof in _T95:
        return _T95[dof]
    keys = sorted(_T95)
    for key in keys:
        if dof < key:
            return _T95[key]
    return 1.96


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100), linear interpolation between ranks."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    if q == 0:
        return ordered[0]
    if q == 100:
        # Exact endpoints: no interpolation arithmetic, so p0/p100 are
        # immune to the FP rank rounding below.
        return ordered[-1]
    rank = (q / 100.0) * (len(ordered) - 1)
    # Clamp against FP spill: q just below 100 can put ceil(rank) one
    # past the last index on large n.
    low = min(math.floor(rank), len(ordered) - 1)
    high = min(math.ceil(rank), len(ordered) - 1)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95) -> Tuple[float, float]:
    """(mean, half-width) of the two-sided CI; half-width is 0 for n < 2."""
    if confidence != 0.95:
        raise ValueError("only 95% confidence tabulated")
    if not values:
        raise ValueError("CI of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t95(n - 1) * math.sqrt(variance / n)
    return mean, half


@dataclass(frozen=True)
class SummaryStats:
    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p99: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range: the box height of the paper's box plots,
        i.e. the latency-variance signal of Fig. 5(b) vs 5(e)."""
        return self.p75 - self.p25

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @classmethod
    def empty(cls) -> "SummaryStats":
        """The zero-sample summary (every statistic is NaN): what a run
        that delivered nothing reports instead of crashing."""
        nan = float("nan")
        return cls(count=0, mean=nan, std=nan, minimum=nan, p25=nan,
                   median=nan, p75=nan, p99=nan, maximum=nan)


def summarize(values: Sequence[float], empty_ok: bool = False) -> SummaryStats:
    """Reduce ``values`` to a :class:`SummaryStats`.

    An empty sequence raises by default (a silent NaN row in a paper
    table is worse than a loud failure); callers that must survive
    zero-sample windows -- a run that delivered no frames, an
    observability histogram nobody fed -- pass ``empty_ok=True`` and
    get :meth:`SummaryStats.empty`.
    """
    if not values:
        if empty_ok:
            return SummaryStats.empty()
        raise ValueError("summarize of empty sequence")
    n = len(values)
    if n == 1:
        # Degenerate single-sample summary: every order statistic is the
        # sample itself and the spread is exactly zero.
        v = float(values[0])
        return SummaryStats(count=1, mean=v, std=0.0, minimum=v, p25=v,
                            median=v, p75=v, p99=v, maximum=v)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        p25=percentile(values, 25),
        median=percentile(values, 50),
        p75=percentile(values, 75),
        p99=percentile(values, 99),
        maximum=max(values),
    )
