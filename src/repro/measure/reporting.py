"""Paper-style reporting: named series and fixed-width tables.

Each experiment module returns :class:`Series` objects (one per figure
curve/bar group) collected into a :class:`Table` whose ``render()``
output is what the benchmark harness prints -- the same rows the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class Series:
    """One labelled sequence of (x, value) points."""

    label: str
    points: Dict[str, float] = field(default_factory=dict)

    def add(self, x: str, value: float) -> None:
        self.points[x] = value

    def get(self, x: str) -> float:
        return self.points[x]

    def xs(self) -> List[str]:
        return list(self.points)


@dataclass
class Table:
    """Series x categories, rendered as a fixed-width text table."""

    title: str
    series: List[Series] = field(default_factory=list)
    unit: str = ""
    fmt: Callable[[float], str] = lambda v: f"{v:.3g}"

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in table {self.title!r}")

    def columns(self) -> List[str]:
        cols: List[str] = []
        for s in self.series:
            for x in s.xs():
                if x not in cols:
                    cols.append(x)
        return cols

    def render(self) -> str:
        cols = self.columns()
        label_width = max([len("series")] + [len(s.label) for s in self.series])
        widths = [max(len(c), 10) for c in cols]
        unit = f"  [{self.unit}]" if self.unit else ""
        lines = [f"== {self.title}{unit} =="]
        header = "  ".join(
            [f"{'series':<{label_width}}"] +
            [f"{c:>{w}}" for c, w in zip(cols, widths)]
        )
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.series:
            cells = []
            for c, w in zip(cols, widths):
                if c in s.points:
                    cells.append(f"{self.fmt(s.points[c]):>{w}}")
                else:
                    cells.append(f"{'-':>{w}}")
            lines.append("  ".join([f"{s.label:<{label_width}}"] + cells))
        return "\n".join(lines)
