"""Measurement reduction: summary statistics, confidence intervals,
and paper-style table/series reporting."""

from repro.measure.stats import (
    SummaryStats,
    mean_confidence_interval,
    percentile,
    summarize,
)
from repro.measure.reporting import Series, Table

__all__ = [
    "SummaryStats",
    "mean_confidence_interval",
    "percentile",
    "summarize",
    "Series",
    "Table",
]
