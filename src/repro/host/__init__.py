"""Host substrate: CPU cores, memory/hugepages, servers, VMs, hypervisor."""

from repro.host.cpu import ComputeShare, CpuCore, CorePool
from repro.host.memory import HostMemory, MemoryAllocation
from repro.host.server import Server
from repro.host.vm import Vm, VmRole
from repro.host.hypervisor import Hypervisor, VmSpec
from repro.host.virtio import VhostPath

__all__ = [
    "ComputeShare",
    "CpuCore",
    "CorePool",
    "HostMemory",
    "MemoryAllocation",
    "Server",
    "Vm",
    "VmRole",
    "Hypervisor",
    "VmSpec",
    "VhostPath",
]
