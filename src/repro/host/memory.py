"""Host memory and 1 GB hugepage accounting.

The paper allocates each VM 4 GB of RAM of which 1 GB is one 1 GB
hugepage; the Baseline receives a proportional number of hugepages, and
the host OS always keeps at least one.  Memory is one axis of Fig. 5's
resource plots, so the model tracks RAM and hugepages separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import MemoryExhaustedError
from repro.units import GIB


@dataclass
class MemoryAllocation:
    owner: str
    ram_bytes: int
    hugepages_1g: int


class HostMemory:
    """RAM plus a pool of 1 GB hugepages."""

    def __init__(self, total_bytes: int = 64 * GIB, hugepages_1g: int = 16) -> None:
        if total_bytes <= 0:
            raise ValueError("total memory must be positive")
        if hugepages_1g * GIB > total_bytes:
            raise ValueError("hugepages exceed total memory")
        self.total_bytes = total_bytes
        self.total_hugepages = hugepages_1g
        self._allocations: Dict[str, MemoryAllocation] = {}
        # The Host OS always keeps one hugepage (paper Fig. 5 caption).
        self.allocate("host-os", ram_bytes=4 * GIB, hugepages_1g=1)

    def allocated_bytes(self) -> int:
        return sum(a.ram_bytes for a in self._allocations.values())

    def allocated_hugepages(self) -> int:
        return sum(a.hugepages_1g for a in self._allocations.values())

    def free_bytes(self) -> int:
        return self.total_bytes - self.allocated_bytes()

    def free_hugepages(self) -> int:
        return self.total_hugepages - self.allocated_hugepages()

    def allocate(self, owner: str, ram_bytes: int, hugepages_1g: int = 0) -> MemoryAllocation:
        """Reserve RAM (inclusive of hugepage-backed RAM) for ``owner``."""
        if owner in self._allocations:
            raise MemoryExhaustedError(f"{owner!r} already holds an allocation")
        if ram_bytes < hugepages_1g * GIB:
            raise ValueError("ram_bytes must cover the requested hugepages")
        if ram_bytes > self.free_bytes():
            raise MemoryExhaustedError(
                f"cannot allocate {ram_bytes} B for {owner!r}: "
                f"{self.free_bytes()} B free"
            )
        if hugepages_1g > self.free_hugepages():
            raise MemoryExhaustedError(
                f"cannot allocate {hugepages_1g} hugepages for {owner!r}: "
                f"{self.free_hugepages()} free"
            )
        allocation = MemoryAllocation(owner, ram_bytes, hugepages_1g)
        self._allocations[owner] = allocation
        return allocation

    def release(self, owner: str) -> None:
        self._allocations.pop(owner, None)

    def allocation_of(self, owner: str) -> MemoryAllocation:
        return self._allocations[owner]

    def owners(self) -> Dict[str, MemoryAllocation]:
        return dict(self._allocations)
