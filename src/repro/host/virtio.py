"""The virtio/vhost path between the Baseline vswitch and tenant VMs.

In the Baseline deployment, tenant VMs attach to the host-resident OVS
through paravirtualized NICs: a frame crossing into or out of the VM
pays a vhost kick (ioeventfd), a context switch into the vhost worker,
and a memory-bus copy.  This is the "software approach over the memory
bus" the paper contrasts with SR-IOV's PCIe path; its per-crossing CPU
cost is the single biggest reason Baseline p2v/v2v throughput trails
MTS.

This module models the crossing as a latency + CPU-cost pair; the cycle
constants live in :mod:`repro.perfmodel.calibration` and are threaded in
by the deployment builder so that the DES and the analytic model agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs as _obs
from repro.net.interfaces import PortPair
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.units import USEC


@dataclass
class VhostCosts:
    """Per-crossing costs of the virtio/vhost path."""

    #: CPU cycles the host side burns per frame (vhost worker + copy).
    cycles_per_crossing: float = 3000.0
    #: One-way latency of a crossing at low load (ioeventfd kick, vhost
    #: worker wakeup, copy); tens of microseconds at low rate.
    latency: float = 25.0 * USEC


class VhostPath:
    """A bidirectional virtio link: host-side endpoint <-> guest endpoint.

    Both directions are modelled identically: ``latency`` of delay and a
    cycle cost that the owning datapath charges to its compute share.
    The guest side is a :class:`PortPair` the tenant application holds;
    the host side is a :class:`PortPair` the vswitch bridge holds.
    """

    def __init__(self, sim: Simulator, name: str, costs: VhostCosts = VhostCosts()):
        self.sim = sim
        self.name = name
        self.costs = costs
        self.host_side = PortPair(f"{name}.host")
        self.guest_side = PortPair(f"{name}.guest")
        self.host_side.attach_tx(self._to_guest)
        self.guest_side.attach_tx(self._to_host)
        self.crossings = 0

    def _to_guest(self, frame: Frame) -> None:
        self.crossings += 1
        frame.stamp(f"{self.name}.h2g")
        frame.charge("vhost", self.costs.latency)
        _obs.TRACER.vhost(self.name, frame, "h2g", self.costs.latency)
        self.sim.call_later(self.costs.latency, self.guest_side.rx.receive, frame)

    def _to_host(self, frame: Frame) -> None:
        self.crossings += 1
        frame.stamp(f"{self.name}.g2h")
        frame.charge("vhost", self.costs.latency)
        _obs.TRACER.vhost(self.name, frame, "g2h", self.costs.latency)
        self.sim.call_later(self.costs.latency, self.host_side.rx.receive, frame)
