"""CPU cores, pinning and the shared/isolated allocation mechanics.

The paper's two resource modes map directly onto this module:

- **shared**: all vswitch compartments are pinned to one physical core
  and time-share it (a :class:`CpuCore` with several consumers).
- **isolated**: each compartment is pinned to its own core.

A :class:`ComputeShare` is what a datapath actually runs on: a core plus
the fraction of it this consumer receives.  ``effective_hz`` is the cycle
supply the capacity model divides per-packet costs into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CoreExhaustedError

#: The DUT's clock: Intel Xeon E5-2683 v4 @ 2.10 GHz.
DEFAULT_FREQ_HZ = 2.1e9


@dataclass
class CpuCore:
    """One physical core (hyper-threading disabled, as in the paper)."""

    core_id: int
    freq_hz: float = DEFAULT_FREQ_HZ
    consumers: List[str] = field(default_factory=list)
    reserved_for: Optional[str] = None  # e.g. "host-os"

    @property
    def num_consumers(self) -> int:
        return len(self.consumers)

    def pin(self, consumer: str) -> None:
        if consumer in self.consumers:
            raise ValueError(f"{consumer} already pinned to core {self.core_id}")
        self.consumers.append(consumer)

    def unpin(self, consumer: str) -> None:
        self.consumers.remove(consumer)


@dataclass
class ComputeShare:
    """A consumer's slice of a core.

    With fair time-sharing among ``core.num_consumers`` pinned consumers,
    each receives ``1/num_consumers`` of the core's cycles.  Call
    :meth:`effective_hz` at use time (after all pinning happened), not at
    allocation time.
    """

    core: CpuCore
    consumer: str

    def effective_hz(self) -> float:
        sharers = max(1, self.core.num_consumers)
        return self.core.freq_hz / sharers

    @property
    def sharers(self) -> int:
        return max(1, self.core.num_consumers)

    def physical_seconds(self, busy_seconds: float) -> float:
        """Physical core-seconds behind ``busy_seconds`` of this share.

        Under fair time-sharing a consumer that is busy for one second
        of its own virtual time occupies the core for ``1/sharers``
        physical seconds -- the quantity billing charges for, since
        that is the hardware actually consumed.
        """
        return busy_seconds / self.sharers


class CorePool:
    """The server's physical cores with reservation and pinning.

    One core is always reserved for the Host OS (the paper's resource
    figures count it separately); consumers then either receive dedicated
    cores or are stacked onto one shared core.
    """

    def __init__(self, num_cores: int, freq_hz: float = DEFAULT_FREQ_HZ) -> None:
        if num_cores < 1:
            raise ValueError("a server needs at least one core")
        self.cores = [CpuCore(core_id=i, freq_hz=freq_hz) for i in range(num_cores)]
        self._dedicated: Dict[str, CpuCore] = {}
        # The Host OS keeps core 0.  It is counted in resource reports but
        # not pinned as a cycle consumer: during a measurement the host is
        # essentially idle, so a Baseline vswitch sharing this core gets
        # its full cycle supply (the paper's single-core Baseline forwards
        # ~1 Mpps, a whole core's worth).
        self.host_core = self.cores[0]
        self.host_core.reserved_for = "host-os"

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def _free_cores(self) -> List[CpuCore]:
        return [c for c in self.cores
                if c.reserved_for is None and not c.consumers]

    def available(self) -> int:
        """Cores with nothing pinned and no reservation."""
        return len(self._free_cores())

    def allocate_dedicated(self, consumer: str) -> ComputeShare:
        """Pin ``consumer`` to an exclusive core (isolated mode)."""
        free = self._free_cores()
        if not free:
            raise CoreExhaustedError(
                f"no free core for {consumer!r} "
                f"({self.num_cores} cores, all busy)"
            )
        core = free[0]
        core.reserved_for = consumer
        core.pin(consumer)
        self._dedicated[consumer] = core
        return ComputeShare(core=core, consumer=consumer)

    def allocate_shared(self, consumer: str, shared_core_tag: str = "vswitch-shared") -> ComputeShare:
        """Stack ``consumer`` onto the designated shared core, creating it
        on first use (shared mode: all compartments on one core)."""
        for core in self.cores:
            if core.reserved_for == shared_core_tag:
                core.pin(consumer)
                return ComputeShare(core=core, consumer=consumer)
        free = self._free_cores()
        if not free:
            raise CoreExhaustedError(f"no free core to create shared pool {shared_core_tag!r}")
        core = free[0]
        core.reserved_for = shared_core_tag
        core.pin(consumer)
        return ComputeShare(core=core, consumer=consumer)

    def allocate_host_share(self, consumer: str) -> ComputeShare:
        """Run ``consumer`` on the Host OS core (the Baseline's kernel
        vswitch shares the host's core)."""
        self.host_core.pin(consumer)
        return ComputeShare(core=self.host_core, consumer=consumer)

    def release(self, consumer: str) -> None:
        """Unpin a consumer everywhere and free its dedicated core.

        A shared pool core (e.g. the ``vswitch-shared`` core) is
        un-reserved once its last consumer leaves.
        """
        for core in self.cores:
            if consumer in core.consumers:
                core.unpin(consumer)
            if core.reserved_for == consumer:
                core.reserved_for = None
            if (not core.consumers and core.reserved_for is not None
                    and core.reserved_for != "host-os"):
                core.reserved_for = None
        self._dedicated.pop(consumer, None)

    def used_cores(self) -> int:
        """Cores with at least one consumer pinned, plus the host core."""
        return sum(
            1 for c in self.cores
            if c.consumers or c.reserved_for == "host-os"
        )
