"""The physical server (device under test).

Mirrors the paper's DUT: a Xeon E5-2683 v4 @ 2.10 GHz (16 physical
cores), 64 GB RAM, and a dual-port 10G SR-IOV NIC.  The server owns the
core pool, the memory pool and the NIC; the hypervisor carves VMs out of
it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.host.cpu import CorePool, DEFAULT_FREQ_HZ
from repro.host.memory import HostMemory
from repro.host.vm import Vm
from repro.sim.kernel import Simulator
from repro.sriov.nic import SriovNic
from repro.units import GIB


class Server:
    """A physical host with cores, memory and one SR-IOV NIC."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dut",
        num_cores: int = 16,
        freq_hz: float = DEFAULT_FREQ_HZ,
        memory_bytes: int = 64 * GIB,
        hugepages_1g: int = 16,
        nic: Optional[SriovNic] = None,
        nic_ports: int = 2,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cores = CorePool(num_cores=num_cores, freq_hz=freq_hz)
        self.memory = HostMemory(total_bytes=memory_bytes, hugepages_1g=hugepages_1g)
        self.nic = nic if nic is not None else SriovNic(sim, num_ports=nic_ports)
        self.vms: Dict[str, Vm] = {}

    @property
    def freq_hz(self) -> float:
        return self.cores.cores[0].freq_hz

    def register_vm(self, vm: Vm) -> None:
        if vm.name in self.vms:
            raise ValueError(f"VM name collision: {vm.name}")
        self.vms[vm.name] = vm

    def unregister_vm(self, name: str) -> None:
        self.vms.pop(name, None)

    def vm(self, name: str) -> Vm:
        return self.vms[name]

    # -- resource reporting (Fig. 5c/f/i) --------------------------------

    def cpu_cores_in_use(self) -> int:
        """Physical cores with at least one consumer (host core included)."""
        return self.cores.used_cores()

    def hugepages_in_use(self) -> int:
        return self.memory.allocated_hugepages()

    def ram_in_use_bytes(self) -> int:
        return self.memory.allocated_bytes()

    def describe(self) -> str:
        lines = [
            f"server {self.name}: {self.cores.num_cores} cores @ "
            f"{self.freq_hz / 1e9:.2f} GHz, "
            f"{self.memory.total_bytes // 2**30} GiB RAM, "
            f"{len(self.nic.ports)}-port SR-IOV NIC",
        ]
        for vm in self.vms.values():
            lines.append("  " + vm.describe())
        return "\n".join(lines)
