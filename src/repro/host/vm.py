"""Virtual machines: tenant VMs and vswitch VMs.

A VM is a named container of resources: vCPU pins (compute shares),
a memory allocation, attached SR-IOV VFs, and the network application
running inside it (a vswitch bridge, a DPDK l2fwd forwarder, a Linux
bridge, or a workload server).  The VM itself has no dataplane logic;
it is the unit of compartmentalization the MTS security argument is
built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro import obs as _obs
from repro.host.cpu import ComputeShare
from repro.host.memory import MemoryAllocation
from repro.sriov.vf import VirtualFunction


class VmRole(Enum):
    TENANT = "tenant"
    VSWITCH = "vswitch"


class VmState(Enum):
    DEFINED = "defined"
    RUNNING = "running"
    STOPPED = "stopped"


@dataclass
class Vm:
    """One virtual machine on the DUT server."""

    name: str
    role: VmRole
    tenant_id: Optional[int] = None
    state: VmState = VmState.DEFINED
    compute: List[ComputeShare] = field(default_factory=list)
    memory: Optional[MemoryAllocation] = None
    vfs: List[VirtualFunction] = field(default_factory=list)
    apps: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_running(self) -> bool:
        return self.state == VmState.RUNNING

    def attach_vf(self, vf: VirtualFunction) -> None:
        self.vfs.append(vf)
        _obs.REGISTRY.counter(
            "vm_vfs_attached_total", "VFs handed to VMs, by VM role",
            labels=("role",)).labels(role=self.role.value).inc()

    def vf_by_kind(self, kind) -> List[VirtualFunction]:
        """All attached VFs of a given :class:`FunctionKind`."""
        return [vf for vf in self.vfs if vf.kind == kind]

    def install_app(self, name: str, app: Any) -> None:
        """Register the application running inside the VM (vswitch,
        l2fwd, workload server...)."""
        if name in self.apps:
            raise ValueError(f"app {name!r} already installed in {self.name}")
        self.apps[name] = app
        _obs.REGISTRY.counter(
            "vm_apps_installed_total", "applications installed, by VM role",
            labels=("role",)).labels(role=self.role.value).inc()

    def app(self, name: str) -> Any:
        return self.apps[name]

    def num_cores(self) -> int:
        """Distinct physical cores this VM's vCPUs are pinned to."""
        return len({share.core.core_id for share in self.compute})

    def describe(self) -> str:
        cores = sorted({s.core.core_id for s in self.compute})
        vfs = ", ".join(vf.name for vf in self.vfs) or "none"
        mem = (f"{self.memory.ram_bytes // 2**30} GiB"
               f" ({self.memory.hugepages_1g} hugepage)") if self.memory else "none"
        return (
            f"{self.name} [{self.role.value}] state={self.state.value} "
            f"cores={cores} mem={mem} vfs=[{vfs}]"
        )
