"""A libvirt-like VM lifecycle API.

The paper's framework drives libvirt/QEMU; this module provides the same
verbs against the simulated server: define a VM from a spec, pin its
vCPUs (dedicated or stacked on the shared vswitch core), back it with
RAM + one 1 GB hugepage, attach SR-IOV VFs, start/stop/undefine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.host.server import Server
from repro.host.vm import Vm, VmRole, VmState
from repro.sriov.vf import VirtualFunction
from repro.units import GIB


class PinPolicy(Enum):
    """How a VM's vCPUs map onto physical cores."""

    DEDICATED = "dedicated"    # one exclusive physical core per vCPU
    SHARED = "shared"          # stacked onto the shared vswitch core
    HOST = "host"              # runs on the Host OS core (Baseline vswitch)


@dataclass
class VmSpec:
    """Declarative VM definition, libvirt-domain style."""

    name: str
    role: VmRole
    vcpus: int = 1
    memory_bytes: int = 4 * GIB
    hugepages_1g: int = 1
    pin_policy: PinPolicy = PinPolicy.DEDICATED
    tenant_id: Optional[int] = None


class Hypervisor:
    """Creates and tears down VMs on a :class:`Server`."""

    def __init__(self, server: Server) -> None:
        self.server = server

    def define_vm(self, spec: VmSpec) -> Vm:
        """Allocate the VM's resources and register it (state: defined)."""
        if spec.vcpus < 1:
            raise ConfigurationError(f"{spec.name}: vcpus must be >= 1")
        if spec.name in self.server.vms:
            raise ConfigurationError(f"VM {spec.name!r} already defined")

        vm = Vm(name=spec.name, role=spec.role, tenant_id=spec.tenant_id)
        vm.memory = self.server.memory.allocate(
            spec.name, ram_bytes=spec.memory_bytes, hugepages_1g=spec.hugepages_1g
        )
        try:
            for vcpu in range(spec.vcpus):
                consumer = f"{spec.name}.vcpu{vcpu}"
                if spec.pin_policy == PinPolicy.DEDICATED:
                    share = self.server.cores.allocate_dedicated(consumer)
                elif spec.pin_policy == PinPolicy.SHARED:
                    share = self.server.cores.allocate_shared(consumer)
                else:
                    share = self.server.cores.allocate_host_share(consumer)
                vm.compute.append(share)
        except Exception:
            # Roll back partial allocations so a failed define leaves the
            # server clean.
            self._release_resources(vm)
            raise
        self.server.register_vm(vm)
        return vm

    def attach_vf(self, vm: Vm, vf: VirtualFunction, nic_port_index: int) -> None:
        """PCI-passthrough a VF into the VM."""
        port = self.server.nic.port(nic_port_index)
        port.attach_vf(vf, owner=vm.name)
        vm.attach_vf(vf)

    def start(self, vm: Vm) -> None:
        if vm.state == VmState.RUNNING:
            raise ConfigurationError(f"{vm.name} already running")
        vm.state = VmState.RUNNING

    def stop(self, vm: Vm) -> None:
        vm.state = VmState.STOPPED

    def undefine(self, vm: Vm) -> None:
        """Stop the VM and release all its resources."""
        vm.state = VmState.STOPPED
        self._release_resources(vm)
        for vf in vm.vfs:
            vf.attached_to = None
        vm.vfs.clear()
        self.server.unregister_vm(vm.name)

    def _release_resources(self, vm: Vm) -> None:
        for share in vm.compute:
            self.server.cores.release(share.consumer)
        vm.compute.clear()
        if vm.memory is not None:
            self.server.memory.release(vm.name)
            vm.memory = None

    def running_vms(self) -> List[Vm]:
        return [vm for vm in self.server.vms.values() if vm.is_running]
