"""Per-hop packet tracing across the mediation chain.

A frame's journey through the MTS chain (VM -> virtio/VF -> vswitch VM
-> VF -> VEB -> wire, Fig. 3) is recorded as one :class:`Span` per hop:
link enqueue/transmit, flow-table lookup (with hit/miss outcome and
which cache layer answered), bridge pass, VEB forwarding decision, NIC
filter verdict, vhost crossing, and every drop with its reason.  Spans
carry the frame id as trace context (stable along a unicast journey;
:meth:`Frame.copy` on multicast fan-out starts a new trace) plus the
tenant id, so journeys can be grouped per tenant.

The disabled default is :class:`NullTracer`: every hook is the same
shared no-op, so an instrumentation site costs its callers exactly one
attribute load and an empty call -- there are no conditionals in the
hot paths.  :func:`repro.obs.enable_tracing` swaps in a recording
:class:`PacketTracer` bound to the simulation clock.

Span ordering is total and deterministic: every span gets a global
sequence number at record time, so spans sharing one simulated
timestamp (common: a whole cached pipeline pass happens at one instant)
still replay in exact causal order.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple


class Span:
    """One hop of one frame's journey."""

    __slots__ = ("trace_id", "seq", "component", "kind", "start", "end",
                 "outcome", "tenant", "attrs")

    def __init__(self, trace_id: int, seq: int, component: str, kind: str,
                 start: float, end: float, outcome: str,
                 tenant: Optional[int], attrs: Optional[dict]) -> None:
        self.trace_id = trace_id
        self.seq = seq
        self.component = component
        self.kind = kind
        self.start = start
        self.end = end
        self.outcome = outcome
        self.tenant = tenant
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "component": self.component,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
        }
        if self.tenant is not None:
            d["tenant"] = self.tenant
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(d["trace_id"], d["seq"], d["component"], d["kind"],
                   d["start"], d["end"], d.get("outcome", ""),
                   d.get("tenant"), d.get("attrs"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span #{self.seq} trace={self.trace_id} "
                f"{self.component}/{self.kind} [{self.start:.9f}, "
                f"{self.end:.9f}] {self.outcome}>")


def _noop(*args, **kwargs) -> None:
    return None


class NullTracer:
    """The zero-cost disabled tracer: every hook is a shared no-op."""

    enabled = False

    kernel_run = staticmethod(_noop)
    link_send = staticmethod(_noop)
    flow_lookup = staticmethod(_noop)
    bridge_rx = staticmethod(_noop)
    bridge_tx = staticmethod(_noop)
    veb_forward = staticmethod(_noop)
    nic_filter = staticmethod(_noop)
    vhost = staticmethod(_noop)
    drop = staticmethod(_noop)
    run_complete = staticmethod(_noop)


class PacketTracer:
    """Recording tracer: appends one :class:`Span` per hook invocation.

    ``capacity`` bounds memory on long runs; once reached, further spans
    are counted in ``spans_dropped`` but not stored (the trace stays a
    valid prefix).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 1_000_000) -> None:
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self.capacity = capacity
        self.spans: List[Span] = []
        self.spans_dropped = 0
        self._seq = 0
        #: Kernel progress samples: (sim_now, events_fired, heap_depth,
        #: wall_seconds) per ``Simulator.run`` return.
        self.kernel_samples: List[Tuple[float, int, int, float]] = []

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- recording core ----------------------------------------------------

    def _record(self, trace_id: int, component: str, kind: str,
                start: float, end: float, outcome: str,
                tenant: Optional[int], attrs: Optional[dict]) -> None:
        if len(self.spans) >= self.capacity:
            self.spans_dropped += 1
            return
        self._seq += 1
        self.spans.append(Span(trace_id, self._seq, component, kind,
                               start, end, outcome, tenant, attrs))

    # -- hooks (called from the instrumented hot paths) --------------------

    def kernel_run(self, sim_now: float, events_fired: int,
                   heap_depth: int, wall_seconds: float) -> None:
        """One ``Simulator.run`` call completed (wall-vs-sim progress)."""
        self.kernel_samples.append(
            (sim_now, events_fired, heap_depth, wall_seconds))

    def link_send(self, name: str, frame, t_submit: float, t_start: float,
                  t_done: float, t_arrival: float) -> None:
        """A frame was handed to a link: an enqueue span (head-of-line
        wait) when it had to queue, then the transmit span (serialization
        + propagation)."""
        if t_start > t_submit:
            self._record(frame.frame_id, name, "link.enqueue",
                         t_submit, t_start, "queued", frame.tenant_id, None)
        self._record(frame.frame_id, name, "link.tx", t_start, t_arrival,
                     "sent", frame.tenant_id,
                     {"bytes": frame.wire_size(),
                      "serialization": t_done - t_start})

    def flow_lookup(self, table_name: str, frame, in_port: int,
                    rule, source: str) -> None:
        """One flow-table lookup; ``source`` names the layer that
        answered: ``emc``, ``tss`` (tuple-space search), ``linear``, or
        ``plan`` (replayed from the bridge's pass-plan cache)."""
        now = self._clock()
        outcome = "miss" if rule is None else "hit"
        attrs = {"source": source, "in_port": in_port}
        if rule is not None:
            attrs["cookie"] = rule.cookie
            attrs["priority"] = rule.priority
        self._record(frame.frame_id, table_name, "flowtable.lookup",
                     now, now, outcome, frame.tenant_id, attrs)

    def bridge_rx(self, bridge_name: str, frame, port_no: int,
                  plan_cached: bool) -> None:
        now = self._clock()
        self._record(frame.frame_id, bridge_name, "vswitch.rx", now, now,
                     "plan_cache_hit" if plan_cached else "pipeline",
                     frame.tenant_id, {"in_port": port_no})

    def bridge_tx(self, bridge_name: str, frame, port_no: int,
                  t_rx: Optional[float] = None) -> None:
        now = self._clock()
        start = now if t_rx is None else t_rx
        self._record(frame.frame_id, bridge_name, "vswitch.tx", start, now,
                     "forwarded", frame.tenant_id, {"out_port": port_no})

    def veb_forward(self, veb_name: str, frame, ingress: str, vlan: int,
                    decision) -> None:
        """The NIC's embedded switch decided egress for a frame."""
        now = self._clock()
        self._record(frame.frame_id, veb_name, "veb.forward", now, now,
                     decision.reason, frame.tenant_id,
                     {"ingress": ingress, "vlan": vlan,
                      "destinations": list(decision.destinations),
                      "flooded": decision.flooded})

    def nic_filter(self, nic_port: str, vf_name: str, frame,
                   verdict: str) -> None:
        """Ingress security chain verdict on a VF transmit (``pass``,
        ``spoof_drop``, ``filter_drop``, ``rate_limited``,
        ``unconfigured``)."""
        now = self._clock()
        self._record(frame.frame_id, nic_port, "nic.filter", now, now,
                     verdict, frame.tenant_id, {"vf": vf_name})

    def vhost(self, name: str, frame, direction: str,
              latency: float) -> None:
        now = self._clock()
        self._record(frame.frame_id, name, "vhost.crossing", now,
                     now + latency, direction, frame.tenant_id, None)

    def drop(self, component: str, frame, reason: str) -> None:
        """A frame left the chain: where and why."""
        now = self._clock()
        self._record(frame.frame_id, component, "drop", now, now,
                     reason, frame.tenant_id, None)

    def run_complete(self, harness, result) -> None:
        """Hook point for end-of-run reporting (see repro.obs.enable)."""
        return None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def journey(self, trace_id: int) -> List[Span]:
        """All spans of one frame in causal order.  Sorting key is
        ``(start, seq)``: sim timestamps first, with the record sequence
        breaking the (frequent) equal-timestamp ties deterministically."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.seq))
        return spans

    def breakdown(self, trace_id: int) -> Dict[str, float]:
        """Per-stage latency of one frame: summed span durations keyed by
        span kind (instantaneous decision spans contribute 0)."""
        totals: Dict[str, float] = {}
        for span in self.journey(trace_id):
            totals[span.kind] = totals.get(span.kind, 0.0) + span.duration
        return totals

    def drops(self) -> List[Span]:
        return [s for s in self.spans
                if s.kind == "drop" or s.outcome.endswith("_drop")]

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per span, one span per line."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                         for s in self.spans)

    def clear(self) -> None:
        self.spans.clear()
        self.kernel_samples.clear()
        self.spans_dropped = 0


def journeys_from_jsonl(text: str) -> Dict[int, List[Span]]:
    """Reconstruct per-packet journeys from a JSON-lines span dump."""
    by_trace: Dict[int, List[Span]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        span = Span.from_dict(json.loads(line))
        by_trace.setdefault(span.trace_id, []).append(span)
    for spans in by_trace.values():
        spans.sort(key=lambda s: (s.start, s.seq))
    return by_trace
