"""Per-hop packet tracing across the mediation chain.

A frame's journey through the MTS chain (VM -> virtio/VF -> vswitch VM
-> VF -> VEB -> wire, Fig. 3) is recorded as one :class:`Span` per hop:
link enqueue/transmit, flow-table lookup (with hit/miss outcome and
which cache layer answered), bridge pass, VEB forwarding decision, NIC
filter verdict, vhost crossing, and every drop with its reason.  Spans
carry the frame id as trace context (stable along a unicast journey;
:meth:`Frame.copy` on multicast fan-out starts a new trace) plus the
tenant id, so journeys can be grouped per tenant.

The disabled default is :class:`NullTracer`: every hook is the same
shared no-op, so an instrumentation site costs its callers exactly one
attribute load and an empty call -- there are no conditionals in the
hot paths.  :func:`repro.obs.enable_tracing` swaps in a recording
:class:`PacketTracer` bound to the simulation clock.

Span ordering is total and deterministic: every span gets a global
sequence number at record time, so spans sharing one simulated
timestamp (common: a whole cached pipeline pass happens at one instant)
still replay in exact causal order.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple


class Span:
    """One hop of one frame's journey."""

    __slots__ = ("trace_id", "seq", "component", "kind", "start", "end",
                 "outcome", "tenant", "attrs")

    def __init__(self, trace_id: int, seq: int, component: str, kind: str,
                 start: float, end: float, outcome: str,
                 tenant: Optional[int], attrs: Optional[dict]) -> None:
        self.trace_id = trace_id
        self.seq = seq
        self.component = component
        self.kind = kind
        self.start = start
        self.end = end
        self.outcome = outcome
        self.tenant = tenant
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "component": self.component,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
        }
        if self.tenant is not None:
            d["tenant"] = self.tenant
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(d["trace_id"], d["seq"], d["component"], d["kind"],
                   d["start"], d["end"], d.get("outcome", ""),
                   d.get("tenant"), d.get("attrs"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span #{self.seq} trace={self.trace_id} "
                f"{self.component}/{self.kind} [{self.start:.9f}, "
                f"{self.end:.9f}] {self.outcome}>")


def _noop(*args, **kwargs) -> None:
    return None


class NullTracer:
    """The zero-cost disabled tracer: every hook is a shared no-op."""

    enabled = False

    kernel_run = staticmethod(_noop)
    link_send = staticmethod(_noop)
    flow_lookup = staticmethod(_noop)
    bridge_rx = staticmethod(_noop)
    bridge_tx = staticmethod(_noop)
    veb_forward = staticmethod(_noop)
    nic_filter = staticmethod(_noop)
    vhost = staticmethod(_noop)
    drop = staticmethod(_noop)
    run_complete = staticmethod(_noop)


#: Raw-record tags: which hook produced a pending record (the
#: materializer switches on these to build the final :class:`Span`).
_T_ENQUEUE = 0
_T_LINK_TX = 1
_T_FLOW = 2
_T_BRIDGE_RX = 3
_T_BRIDGE_TX = 4
_T_VEB = 5
_T_NIC_FILTER = 6
_T_VHOST = 7
_T_DROP = 8


class PacketTracer:
    """Recording tracer: one :class:`Span` per hook invocation.

    Recording is two-phase to keep the hot-path hook cost near an
    append: each hook pushes one raw argument tuple (values frozen at
    record time where the source object mutates later, deferred
    otherwise) onto ``_raw``, and :class:`Span` objects -- allocation,
    sequence numbers, attrs dicts -- are materialized lazily on the
    first query through :attr:`spans`.  Materialization preserves
    append order, so sequence numbers are identical to eager recording.

    ``capacity`` bounds memory on long runs; once reached, further spans
    are counted in ``spans_dropped`` but not stored (the trace stays a
    valid prefix).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 1_000_000, sim=None) -> None:
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        #: When bound to a Simulator, hooks read ``sim._now`` directly:
        #: one attribute load instead of a closure call plus a property
        #: descriptor per span.
        self._sim = sim
        self.capacity = capacity
        self._raw: List[tuple] = []
        self._spans: List[Span] = []
        #: Total records accepted (raw + materialized): the capacity
        #: check is one int compare instead of two len() calls.
        self._count = 0
        self.spans_dropped = 0
        self._seq = 0
        #: Kernel progress samples: (sim_now, events_fired, heap_depth,
        #: wall_seconds) per ``Simulator.run`` return.
        self.kernel_samples: List[Tuple[float, int, int, float]] = []

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._sim = None

    def bind_sim(self, sim) -> None:
        """Bind the hot-path clock to ``sim`` (see ``_sim`` above)."""
        self._sim = sim
        self._clock = lambda: sim.now

    # -- recording core ----------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Recorded spans, materializing any pending raw records."""
        if self._raw:
            self._materialize()
        return self._spans

    def _materialize(self) -> None:
        spans = self._spans
        seq = self._seq
        append = spans.append
        for rec in self._raw:
            tag = rec[0]
            seq += 1
            if tag == _T_FLOW:
                _, fid, name, now, rule, source, in_port, tenant = rec
                attrs = {"source": source, "in_port": in_port}
                if rule is None:
                    outcome = "miss"
                else:
                    outcome = "hit"
                    attrs["cookie"] = rule.cookie
                    attrs["priority"] = rule.priority
                append(Span(fid, seq, name, "flowtable.lookup", now, now,
                            outcome, tenant, attrs))
            elif tag == _T_LINK_TX:
                _, fid, name, t_start, t_done, t_arrival, tenant, wire = rec
                append(Span(fid, seq, name, "link.tx", t_start, t_arrival,
                            "sent", tenant,
                            {"bytes": wire,
                             "serialization": t_done - t_start}))
            elif tag == _T_ENQUEUE:
                _, fid, name, t_submit, t_start, tenant = rec
                append(Span(fid, seq, name, "link.enqueue", t_submit,
                            t_start, "queued", tenant, None))
            elif tag == _T_BRIDGE_RX:
                _, fid, name, now, cached, port_no, tenant = rec
                append(Span(fid, seq, name, "vswitch.rx", now, now,
                            "plan_cache_hit" if cached else "pipeline",
                            tenant, {"in_port": port_no}))
            elif tag == _T_BRIDGE_TX:
                _, fid, name, start, now, port_no, tenant = rec
                append(Span(fid, seq, name, "vswitch.tx", start, now,
                            "forwarded", tenant, {"out_port": port_no}))
            elif tag == _T_VEB:
                _, fid, name, now, ingress, vlan, decision, tenant = rec
                append(Span(fid, seq, name, "veb.forward", now, now,
                            decision.reason, tenant,
                            {"ingress": ingress, "vlan": vlan,
                             "destinations": list(decision.destinations),
                             "flooded": decision.flooded}))
            elif tag == _T_NIC_FILTER:
                _, fid, name, now, vf_name, verdict, tenant = rec
                append(Span(fid, seq, name, "nic.filter", now, now,
                            verdict, tenant, {"vf": vf_name}))
            elif tag == _T_VHOST:
                _, fid, name, now, direction, latency, tenant = rec
                append(Span(fid, seq, name, "vhost.crossing", now,
                            now + latency, direction, tenant, None))
            else:  # _T_DROP
                _, fid, name, now, reason, tenant = rec
                append(Span(fid, seq, name, "drop", now, now,
                            reason, tenant, None))
        self._seq = seq
        self._raw = []

    # -- hooks (called from the instrumented hot paths) --------------------

    def kernel_run(self, sim_now: float, events_fired: int,
                   heap_depth: int, wall_seconds: float) -> None:
        """One ``Simulator.run`` call completed (wall-vs-sim progress)."""
        self.kernel_samples.append(
            (sim_now, events_fired, heap_depth, wall_seconds))

    def link_send(self, name: str, frame, t_submit: float, t_start: float,
                  t_done: float, t_arrival: float) -> None:
        """A frame was handed to a link: an enqueue span (head-of-line
        wait) when it had to queue, then the transmit span (serialization
        + propagation)."""
        cap = self.capacity
        if t_start > t_submit:
            if self._count < cap:
                self._count += 1
                self._raw.append((_T_ENQUEUE, frame.frame_id, name,
                                  t_submit, t_start, frame.tenant_id))
            else:
                self.spans_dropped += 1
        if self._count < cap:
            self._count += 1
            # wire_size() depends on headers that mutate down the chain,
            # so it is frozen here rather than deferred.
            self._raw.append((_T_LINK_TX, frame.frame_id, name, t_start,
                              t_done, t_arrival, frame.tenant_id,
                              frame.wire_size()))
        else:
            self.spans_dropped += 1

    def flow_lookup(self, table_name: str, frame, in_port: int,
                    rule, source: str) -> None:
        """One flow-table lookup; ``source`` names the layer that
        answered: ``emc``, ``tss`` (tuple-space search), ``linear``, or
        ``plan`` (replayed from the bridge's pass-plan cache)."""
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_FLOW, frame.frame_id, table_name,
                              sim._now if sim is not None else self._clock(),
                              rule, source, in_port, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def bridge_rx(self, bridge_name: str, frame, port_no: int,
                  plan_cached: bool) -> None:
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_BRIDGE_RX, frame.frame_id, bridge_name,
                              sim._now if sim is not None else self._clock(),
                              plan_cached, port_no, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def bridge_tx(self, bridge_name: str, frame, port_no: int,
                  t_rx: Optional[float] = None) -> None:
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            now = sim._now if sim is not None else self._clock()
            start = now if t_rx is None else t_rx
            self._raw.append((_T_BRIDGE_TX, frame.frame_id, bridge_name,
                              start, now, port_no, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def veb_forward(self, veb_name: str, frame, ingress: str, vlan: int,
                    decision) -> None:
        """The NIC's embedded switch decided egress for a frame.
        ``decision`` is immutable after return, so its fields are read
        lazily at materialization."""
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_VEB, frame.frame_id, veb_name,
                              sim._now if sim is not None else self._clock(),
                              ingress, vlan, decision, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def nic_filter(self, nic_port: str, vf_name: str, frame,
                   verdict: str) -> None:
        """Ingress security chain verdict on a VF transmit (``pass``,
        ``spoof_drop``, ``filter_drop``, ``rate_limited``,
        ``unconfigured``)."""
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_NIC_FILTER, frame.frame_id, nic_port,
                              sim._now if sim is not None else self._clock(),
                              vf_name, verdict, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def vhost(self, name: str, frame, direction: str,
              latency: float) -> None:
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_VHOST, frame.frame_id, name,
                              sim._now if sim is not None else self._clock(),
                              direction, latency, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def drop(self, component: str, frame, reason: str) -> None:
        """A frame left the chain: where and why."""
        if self._count < self.capacity:
            self._count += 1
            sim = self._sim
            self._raw.append((_T_DROP, frame.frame_id, component,
                              sim._now if sim is not None else self._clock(),
                              reason, frame.tenant_id))
        else:
            self.spans_dropped += 1

    def run_complete(self, harness, result) -> None:
        """Hook point for end-of-run reporting (see repro.obs.enable)."""
        return None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def journey(self, trace_id: int) -> List[Span]:
        """All spans of one frame in causal order.  Sorting key is
        ``(start, seq)``: sim timestamps first, with the record sequence
        breaking the (frequent) equal-timestamp ties deterministically."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.seq))
        return spans

    def breakdown(self, trace_id: int) -> Dict[str, float]:
        """Per-stage latency of one frame: summed span durations keyed by
        span kind (instantaneous decision spans contribute 0)."""
        totals: Dict[str, float] = {}
        for span in self.journey(trace_id):
            totals[span.kind] = totals.get(span.kind, 0.0) + span.duration
        return totals

    def drops(self) -> List[Span]:
        return [s for s in self.spans
                if s.kind == "drop" or s.outcome.endswith("_drop")]

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per span, one span per line."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                         for s in self.spans)

    def clear(self) -> None:
        self._raw.clear()
        self._spans.clear()
        self._count = 0
        self.kernel_samples.clear()
        self.spans_dropped = 0


def journeys_from_jsonl(text: str) -> Dict[int, List[Span]]:
    """Reconstruct per-packet journeys from a JSON-lines span dump."""
    by_trace: Dict[int, List[Span]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        span = Span.from_dict(json.loads(line))
        by_trace.setdefault(span.trace_id, []).append(span)
    for spans in by_trace.values():
        spans.sort(key=lambda s: (s.start, s.seq))
    return by_trace
