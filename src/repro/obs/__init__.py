"""Unified telemetry: sim-time metrics registry + per-hop packet tracing.

The observability layer has three moving parts:

- :mod:`repro.obs.metrics` -- named counters/gauges/histograms with
  labels, recorded against *simulated* time;
- :mod:`repro.obs.trace` -- the packet tracer: one span per hop through
  the mediation chain, reconstructable into per-packet journeys;
- :mod:`repro.obs.export` -- JSON-lines span dumps, Prometheus text
  snapshots, and paper-style summary tables.

Two module-level globals are the integration surface the dataplane
uses:

``TRACER``
    The active tracer.  By default a :class:`NullTracer` whose hooks
    are shared no-ops, so instrumentation sites cost one attribute load
    and an empty call when tracing is off.  Hot paths call it as
    ``_obs.TRACER.hook(...)`` -- always through the module attribute,
    never a cached local, so :func:`enable_tracing` takes effect
    everywhere at once.

``REGISTRY``
    The process-wide :class:`MetricsRegistry`.  Control-plane events
    write it directly; hot-path cache stats are *pulled* in by
    :func:`repro.obs.integrate.harvest` after each harness run.

Typical use (also what ``repro obs`` does)::

    from repro import obs
    deployment = build_deployment(spec, scenario)
    tracer = obs.enable_tracing(deployment.sim)
    ... run traffic ...
    journey = tracer.journey(frame.frame_id)
    print(obs.REGISTRY.prometheus_text())
    obs.disable_tracing()
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NullTracer, PacketTracer, Span, journeys_from_jsonl
from repro.obs import integrate as _integrate

#: The active tracer; swapped by enable_tracing()/disable_tracing().
TRACER = NullTracer()

#: The process-wide metrics registry.
REGISTRY = MetricsRegistry()

#: When true, TestbedHarness.run prints the per-tenant per-component
#: summary tables after every run (set by the ``repro obs`` CLI).
PRINT_RUN_SUMMARY = False


def enable_tracing(sim=None, capacity: int = 1_000_000) -> PacketTracer:
    """Swap in a recording tracer, bound to ``sim``'s clock when given.
    Returns the tracer (also reachable as ``repro.obs.TRACER``)."""
    global TRACER
    tracer = PacketTracer(clock=(lambda: sim.now) if sim is not None else None,
                          capacity=capacity, sim=sim)
    TRACER = tracer
    if sim is not None:
        REGISTRY.set_clock(lambda: sim.now)
    return tracer


def disable_tracing() -> None:
    """Restore the zero-cost no-op tracer."""
    global TRACER
    TRACER = NullTracer()


def tracing_enabled() -> bool:
    return TRACER.enabled


def set_print_run_summary(on: bool) -> None:
    global PRINT_RUN_SUMMARY
    PRINT_RUN_SUMMARY = on


def on_deployment_built(deployment) -> None:
    """Bind the registry (and an active tracer) to a new deployment's
    simulation clock.  Called by ``build_deployment``; with several live
    deployments the most recently built one owns the clock."""
    sim = deployment.sim
    REGISTRY.set_clock(lambda: sim.now)
    if TRACER.enabled:
        TRACER.bind_sim(sim)


def on_run_complete(harness, result) -> None:
    """Called by ``TestbedHarness.run`` after every run: harvest cache
    stats into the registry, notify the tracer, and (when enabled)
    print the per-tenant per-component summary tables."""
    _integrate.harvest(harness.deployment, REGISTRY)
    TRACER.run_complete(harness, result)
    if PRINT_RUN_SUMMARY and TRACER.enabled:
        from repro.obs.export import tenant_hop_table, tenant_latency_table
        print(tenant_latency_table(TRACER).render())
        print()
        print(tenant_hop_table(TRACER).render())


# Re-exported integration helpers (the documented public surface).
harvest = _integrate.harvest
harvest_fabric = _integrate.harvest_fabric
fabric_gauges = _integrate.fabric_gauges
cache_efficacy_line = _integrate.cache_efficacy_line
deployment_metrics = _integrate.deployment_metrics

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PacketTracer",
    "Span",
    "journeys_from_jsonl",
    "TRACER",
    "REGISTRY",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "set_print_run_summary",
    "on_deployment_built",
    "on_run_complete",
    "harvest",
    "harvest_fabric",
    "fabric_gauges",
    "cache_efficacy_line",
    "deployment_metrics",
]
