"""Exporters: JSON-lines span dumps, Prometheus text, summary tables.

Three consumers, three formats:

- **JSON-lines** span dumps are the raw material for offline journey
  reconstruction (:func:`repro.obs.trace.journeys_from_jsonl`) -- one
  span per line, greppable, streamable;
- the **Prometheus text snapshot** is what a real deployment would
  scrape; here it goes to a file or stdout;
- the **summary tables** reuse :class:`repro.measure.reporting.Table`
  so the per-tenant, per-component run summary renders exactly like the
  paper-style experiment tables it prints next to.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.measure.reporting import Series, Table
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PacketTracer, Span
from repro.units import USEC


def write_spans_jsonl(tracer: PacketTracer, path: str) -> int:
    """Dump all recorded spans as JSON-lines; returns the span count."""
    text = tracer.to_jsonl()
    with open(path, "w") as handle:
        handle.write(text)
        if text:
            handle.write("\n")
    return len(tracer.spans)


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write a Prometheus exposition-format snapshot."""
    with open(path, "w") as handle:
        handle.write(registry.prometheus_text())


def _write_dicts_jsonl(items, path: str) -> int:
    count = 0
    with open(path, "w") as handle:
        for item in items:
            record = item.to_dict() if hasattr(item, "to_dict") else item
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def write_usage_jsonl(records, path: str) -> int:
    """Dump usage records (``UsageRecord`` objects or their dicts) as
    JSON-lines, one window-tenant entry per line; returns the count."""
    return _write_dicts_jsonl(records, path)


def write_invoices_jsonl(invoices, path: str) -> int:
    """Dump per-tenant invoices as JSON-lines; returns the count."""
    return _write_dicts_jsonl(invoices, path)


def _tenant_label(tenant: Optional[int]) -> str:
    return f"tenant{tenant}" if tenant is not None else "untagged"


def tenant_latency_table(tracer: PacketTracer,
                         title: str = "Per-tenant per-stage latency "
                                      "(mean over traced spans)") -> Table:
    """Rows: tenants; columns: span kinds with nonzero duration; cells:
    mean span duration in microseconds."""
    sums: Dict[Tuple[str, str], float] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for span in tracer.spans:
        if span.duration <= 0:
            continue
        key = (_tenant_label(span.tenant), span.kind)
        sums[key] = sums.get(key, 0.0) + span.duration
        counts[key] = counts.get(key, 0) + 1
    table = Table(title=title, unit="us", fmt=lambda v: f"{v:.2f}")
    tenants = sorted({t for t, _ in sums})
    kinds = sorted({k for _, k in sums})
    for tenant in tenants:
        series = Series(label=tenant)
        for kind in kinds:
            if (tenant, kind) in sums:
                series.add(kind,
                           sums[(tenant, kind)] / counts[(tenant, kind)] / USEC)
        table.add_series(series)
    return table


def tenant_hop_table(tracer: PacketTracer,
                     title: str = "Per-tenant hop counts "
                                  "(spans by component kind)") -> Table:
    """Rows: tenants; columns: span kinds; cells: span counts (drops and
    filter verdicts included, so mediation gaps are visible per tenant)."""
    counts: Dict[Tuple[str, str], int] = {}
    for span in tracer.spans:
        key = (_tenant_label(span.tenant), span.kind)
        counts[key] = counts.get(key, 0) + 1
    table = Table(title=title, unit="spans", fmt=lambda v: f"{v:.0f}")
    tenants = sorted({t for t, _ in counts})
    kinds = sorted({k for _, k in counts})
    for tenant in tenants:
        series = Series(label=tenant)
        for kind in kinds:
            if (tenant, kind) in counts:
                series.add(kind, counts[(tenant, kind)])
        table.add_series(series)
    return table


def drop_report(tracer: PacketTracer) -> List[str]:
    """Human-readable drop lines: component, reason, count, tenants hit."""
    agg: Dict[Tuple[str, str], List[Optional[int]]] = {}
    for span in tracer.drops():
        agg.setdefault((span.component, span.outcome), []).append(span.tenant)
    lines = []
    for (component, reason), tenants in sorted(agg.items()):
        affected = sorted({t for t in tenants if t is not None})
        suffix = f" (tenants {affected})" if affected else ""
        lines.append(f"{component}: {len(tenants)} x {reason}{suffix}")
    return lines


def journey_report(spans: List[Span]) -> str:
    """Render one packet's journey, one hop per line, with cumulative
    sim time and per-hop duration."""
    if not spans:
        return "(no spans)"
    t0 = spans[0].start
    lines = [f"trace {spans[0].trace_id}"
             + (f" (tenant {spans[0].tenant})" if spans[0].tenant is not None
                else "")]
    for span in spans:
        dur = (f" +{span.duration / USEC:8.2f}us" if span.duration > 0
               else " " * 12)
        lines.append(
            f"  t={(span.start - t0) / USEC:10.2f}us{dur}  "
            f"{span.component:<24} {span.kind:<18} {span.outcome}")
    return "\n".join(lines)
