"""Glue between deployments and the telemetry registry.

Hot-path components keep their own cheap counters (PR 1's cache stats:
``FlowTable.emc_stats``, ``OvsBridge.plan_cache_hits``,
``VebSwitch.decision_cache_hits``, ``FilterChain.memo_hits``).  This
module pulls them into the shared :class:`MetricsRegistry` in two ways:

- :func:`harvest` -- called by the harness after every run: folds the
  *delta* since the last harvest into global, labelled counters
  (``cache_hits_total{cache="emc"}`` etc.), so the experiment runner can
  report cache efficacy per experiment by diffing registry snapshots;
- :func:`deployment_metrics` -- a one-shot detailed pull for the
  ``repro obs`` CLI: per-table / per-bridge / per-VEB gauges.

Everything here is duck-typed against the deployment object to keep
``repro.obs`` import-light (no dependency on ``repro.core``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: Caches surfaced per experiment: registry label value -> pretty name.
_CACHES = ("emc", "plan", "veb_memo", "filter_memo")


def _cache_totals(deployment) -> Dict[str, float]:
    """Cumulative cache/drop counters of one deployment's components."""
    t: Dict[str, float] = {
        "emc_hits": 0, "emc_misses": 0, "emc_evictions": 0,
        "flow_lookups": 0, "flow_misses": 0,
        "plan_lookups": 0, "plan_hits": 0, "plan_invalidations": 0,
        "veb_forwards": 0, "veb_memo_hits": 0, "veb_floods": 0,
        "veb_unknown_unicast": 0,
        "filter_evals": 0, "filter_memo_hits": 0, "filter_drops": 0,
        "drop_no_match": 0, "drop_action": 0, "drop_rx_ring": 0,
        "drop_spoof": 0, "drop_filtered": 0, "drop_no_destination": 0,
        "drop_unconfigured_vf": 0, "drop_rate_limited": 0,
    }
    for bridge in getattr(deployment, "bridges", ()):
        for table in bridge.tables.values():
            t["emc_hits"] += table.emc_stats.hits
            t["emc_misses"] += table.emc_stats.misses
            t["emc_evictions"] += table.emc_stats.evictions
            t["flow_lookups"] += table.lookups
            t["flow_misses"] += table.misses
        t["plan_lookups"] += sum(p.rx_frames for p in bridge.ports())
        t["plan_hits"] += bridge.plan_cache_hits
        t["plan_invalidations"] += bridge.plan_cache_invalidations
        t["drop_no_match"] += bridge.drops_no_match
        t["drop_action"] += bridge.drops_action
        t["drop_rx_ring"] += bridge.rx_drops()
    server = getattr(deployment, "server", None)
    nic = getattr(server, "nic", None)
    if nic is not None:
        for port in nic.ports:
            t["veb_forwards"] += port.veb.forwards
            t["veb_memo_hits"] += port.veb.decision_cache_hits
            t["veb_floods"] += port.veb.floods
            t["veb_unknown_unicast"] += port.veb.unknown_unicasts
            t["drop_spoof"] += port.drops.spoof
            t["drop_filtered"] += port.drops.filtered
            t["drop_no_destination"] += port.drops.no_destination
            t["drop_unconfigured_vf"] += port.drops.unconfigured_vf
            t["drop_rate_limited"] += port.drops.rate_limited
        t["filter_evals"] += nic.filters.evaluations
        t["filter_memo_hits"] += nic.filters.memo_hits
        t["filter_drops"] += nic.filters.drops
    return t


def drop_totals(deployment) -> Dict[str, float]:
    """Cumulative per-component drop counters (the ``drop_*`` subset of
    the harvested totals; ``filter_drops`` is excluded because each of
    its frames is already in ``drop_filtered``).  The chaos layer diffs
    this around a run to close its packet-conservation books."""
    totals = _cache_totals(deployment)
    return {k: v for k, v in totals.items() if k.startswith("drop_")}


def harvest(deployment, registry: MetricsRegistry) -> Dict[str, float]:
    """Fold this deployment's counter growth since the last harvest into
    the registry's global cache/drop counters; returns the delta."""
    totals = _cache_totals(deployment)
    prev = getattr(deployment, "_obs_harvested", None) or {}
    delta = {k: v - prev.get(k, 0) for k, v in totals.items()}
    deployment._obs_harvested = totals

    hits = registry.counter(
        "cache_hits_total", "fast-path cache hits", labels=("cache",))
    lookups = registry.counter(
        "cache_lookups_total", "fast-path cache lookups", labels=("cache",))
    pairs = {
        "emc": (delta["emc_hits"], delta["emc_hits"] + delta["emc_misses"]),
        "plan": (delta["plan_hits"], delta["plan_lookups"]),
        "veb_memo": (delta["veb_memo_hits"], delta["veb_forwards"]),
        "filter_memo": (delta["filter_memo_hits"], delta["filter_evals"]),
    }
    for cache, (h, n) in pairs.items():
        if n:
            hits.labels(cache=cache).inc(h)
            lookups.labels(cache=cache).inc(n)
    if delta["plan_invalidations"]:
        registry.counter("plan_invalidations_total",
                         "bridge pass-plan cache flushes").inc(
            delta["plan_invalidations"])
    if delta["emc_evictions"]:
        registry.counter("cache_evictions_total", "cache capacity evictions",
                         labels=("cache",)).labels(cache="emc").inc(
            delta["emc_evictions"])
    drops = registry.counter("drops_total", "frames dropped",
                             labels=("component", "reason"))
    for key, (component, reason) in {
        "drop_no_match": ("vswitch", "no_match"),
        "drop_action": ("vswitch", "action"),
        "drop_rx_ring": ("vswitch", "rx_ring_full"),
        "drop_spoof": ("nic", "spoof"),
        "drop_filtered": ("nic", "filtered"),
        "drop_no_destination": ("nic", "no_destination"),
        "drop_unconfigured_vf": ("nic", "unconfigured_vf"),
        "drop_rate_limited": ("nic", "rate_limited"),
    }.items():
        if delta[key]:
            drops.labels(component=component, reason=reason).inc(delta[key])
    return delta


def harvest_fabric(switches, registry: MetricsRegistry) -> Dict[str, float]:
    """Fold fabric-switch counter growth since the last harvest into
    global fabric counters (the delta idiom of :func:`harvest`, applied
    to :meth:`FabricSwitch.counters`); returns the summed delta."""
    floods = registry.counter("fabric_floods_total",
                              "fabric frames flooded", labels=("switch",))
    forwarded = registry.counter("fabric_forwarded_total",
                                 "fabric frames unicast-forwarded",
                                 labels=("switch",))
    port_tx = registry.counter("fabric_port_tx_total",
                               "frames transmitted per fabric port",
                               labels=("switch", "port"))
    port_drops = registry.counter("fabric_port_tx_drops_total",
                                  "frames dropped at linkless fabric ports",
                                  labels=("switch", "port"))
    summed: Dict[str, float] = {}
    for switch in switches:
        totals = switch.counters()
        prev = getattr(switch, "_obs_harvested", None) or {}
        delta = {k: v - prev.get(k, 0) for k, v in totals.items()}
        switch._obs_harvested = totals
        for key, value in delta.items():
            summed[key] = summed.get(key, 0.0) + value
            if not value:
                continue
            if key == "floods":
                floods.labels(switch=switch.name).inc(value)
            elif key == "forwarded":
                forwarded.labels(switch=switch.name).inc(value)
            elif key.endswith(".tx"):
                port_tx.labels(switch=switch.name,
                               port=key.removesuffix(".tx")).inc(value)
            elif key.endswith(".tx_drops"):
                port_drops.labels(
                    switch=switch.name,
                    port=key.removesuffix(".tx_drops")).inc(value)
    return summed


def fabric_gauges(switches, registry: MetricsRegistry) -> MetricsRegistry:
    """One-shot per-port gauges of the fabric switches (the ``repro
    obs``-style detailed pull, like :func:`deployment_metrics`)."""
    rx = registry.gauge("fabric_port_rx", "frames received per fabric port",
                        labels=("switch", "port"))
    tx = registry.gauge("fabric_port_tx", "frames sent per fabric port",
                        labels=("switch", "port"))
    drops = registry.gauge("fabric_port_tx_drops",
                           "frames dropped at linkless fabric ports",
                           labels=("switch", "port"))
    for switch in switches:
        for key, value in switch.counters().items():
            port, _, kind = key.partition(".")
            if kind == "rx":
                rx.labels(switch=switch.name, port=port).set(value)
            elif kind == "tx":
                tx.labels(switch=switch.name, port=port).set(value)
            elif kind == "tx_drops":
                drops.labels(switch=switch.name, port=port).set(value)
    return registry


def _get(snapshot: Dict[str, float], name: str, **labels) -> float:
    pairs = ",".join(f'{k}="{v}"' for k, v in labels.items())
    key = f"{name}{{{pairs}}}" if pairs else name
    return snapshot.get(key, 0.0)


def cache_efficacy_line(registry: MetricsRegistry,
                        before: Optional[Dict[str, float]] = None) -> Optional[str]:
    """One-line per-experiment cache report from registry counter deltas
    (``before`` is a prior :meth:`MetricsRegistry.snapshot`); ``None``
    when no cache was consulted in the interval."""
    after = registry.snapshot()
    before = before or {}
    parts = []
    for cache in _CACHES:
        n = (_get(after, "cache_lookups_total", cache=cache)
             - _get(before, "cache_lookups_total", cache=cache))
        if n <= 0:
            continue
        h = (_get(after, "cache_hits_total", cache=cache)
             - _get(before, "cache_hits_total", cache=cache))
        parts.append(f"{cache.replace('_', '-')} {h / n:.1%} "
                     f"({h:.0f}/{n:.0f})")
    if not parts:
        return None
    inval = (_get(after, "plan_invalidations_total")
             - _get(before, "plan_invalidations_total"))
    line = "[obs] cache hit rates: " + ", ".join(parts)
    if inval:
        line += f"; plan invalidations +{inval:.0f}"
    return line


def deployment_metrics(deployment,
                       registry: Optional[MetricsRegistry] = None
                       ) -> MetricsRegistry:
    """Detailed per-component gauges of one deployment (the ``repro obs``
    snapshot): per-table EMC, per-bridge plan cache, per-VEB memo, NIC
    filter chain, and simulator progress."""
    sim = deployment.sim
    if registry is None:
        registry = MetricsRegistry(clock=lambda: sim.now)
    emc_rate = registry.gauge("emc_hit_rate", "EMC hit fraction per table",
                              labels=("table",))
    flow_lookups = registry.gauge("flow_lookups", "lookups per table",
                                  labels=("table",))
    flow_misses = registry.gauge("flow_misses", "table misses", labels=("table",))
    rules = registry.gauge("flow_rules", "installed rules", labels=("table",))
    plan_hits = registry.gauge("plan_cache_hits", "pass-plan replays",
                               labels=("bridge",))
    plan_inval = registry.gauge("plan_cache_invalidations",
                                "pass-plan flushes", labels=("bridge",))
    passes = registry.gauge("bridge_passes", "forwarding passes",
                            labels=("bridge",))
    for bridge in getattr(deployment, "bridges", ()):
        for table in bridge.tables.values():
            emc_rate.labels(table=table.name).set(table.emc_stats.hit_rate)
            flow_lookups.labels(table=table.name).set(table.lookups)
            flow_misses.labels(table=table.name).set(table.misses)
            rules.labels(table=table.name).set(len(table))
        plan_hits.labels(bridge=bridge.name).set(bridge.plan_cache_hits)
        plan_inval.labels(bridge=bridge.name).set(
            bridge.plan_cache_invalidations)
        passes.labels(bridge=bridge.name).set(bridge.passes)
    nic = getattr(deployment.server, "nic", None)
    if nic is not None:
        veb_hits = registry.gauge("veb_decision_cache_hits",
                                  "VEB memo hits", labels=("veb",))
        veb_fw = registry.gauge("veb_forwards", "VEB forwarding decisions",
                                labels=("veb",))
        for port in nic.ports:
            veb_hits.labels(veb=port.veb.name).set(
                port.veb.decision_cache_hits)
            veb_fw.labels(veb=port.veb.name).set(port.veb.forwards)
        registry.gauge("nic_filter_evaluations",
                       "filter chain walks + memo hits").set(
            nic.filters.evaluations)
        registry.gauge("nic_filter_memo_hits", "memoized verdicts").set(
            nic.filters.memo_hits)
        registry.gauge("nic_filter_drops", "filter DROP verdicts").set(
            nic.filters.drops)
    registry.gauge("sim_events_fired", "DES events executed").set(
        sim.events_fired)
    registry.gauge("sim_heap_pending", "DES events still queued").set(
        sim.pending())
    registry.gauge("sim_now_seconds", "simulated clock").set(sim.now)
    return registry
