"""The metrics registry: named counters, gauges and histograms.

Every metric is recorded against *simulated* time (the registry holds a
clock callable, normally bound to ``Simulator.now``), so rates derived
from counters are physically meaningful packet/event rates, not
wall-clock artifacts of how fast the DES happened to run.

Metrics are organized as **families**: a family has a name, a help
string and a fixed label schema (e.g. ``("tenant", "component")``); the
family's :meth:`MetricFamily.labels` call returns the child holding one
label-value combination.  A family declared with no labels acts as its
own single child, so ``registry.counter("x").inc()`` just works.

Hot-path components do **not** write into the registry per packet --
they keep their cheap local counters (``FlowTable.emc_stats``,
``OvsBridge.plan_cache_hits``, ...) and register a *collector*: a
callback the registry runs at snapshot/export time to pull those values
in.  That keeps the instrumented fast paths at zero registry cost while
still giving one unified surface for export.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.measure.stats import SummaryStats, summarize

#: Default histogram buckets: latency-shaped, in seconds (500 ns .. 1 s).
DEFAULT_BUCKETS = (
    5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1.0,
)


def _zero_clock() -> float:
    return 0.0


def _label_str(schema: Sequence[str], values: Tuple) -> str:
    if not schema:
        return ""
    pairs = ",".join(f'{k}="{v}"' for k, v in zip(schema, values))
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing count with first/last update times."""

    __slots__ = ("value", "first_t", "last_t", "_clock")

    def __init__(self, clock: Callable[[], float]) -> None:
        self.value = 0.0
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        now = self._clock()
        if self.first_t is None:
            self.first_t = now
        self.last_t = now
        self.value += amount

    def rate(self) -> float:
        """Mean rate per simulated second over the counter's active span."""
        if self.first_t is None or self.last_t is None:
            return 0.0
        span = self.last_t - self.first_t
        return self.value / span if span > 0 else 0.0


class Gauge:
    """A value that can go up and down; remembers when it was last set."""

    __slots__ = ("value", "last_t", "_clock")

    def __init__(self, clock: Callable[[], float]) -> None:
        self.value = 0.0
        self.last_t: Optional[float] = None
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = value
        self.last_t = self._clock()

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Fixed-bucket histogram that also retains raw samples.

    The buckets give the Prometheus-style cumulative export; the raw
    samples feed :func:`repro.measure.stats.summarize`, so percentile
    math lives in exactly one place (the module the paper-style tables
    already use) instead of being re-derived from bucket bounds.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "_samples",
                 "_clock", "last_t")

    def __init__(self, clock: Callable[[], float],
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf bucket
        self.count = 0
        self.sum = 0.0
        self._samples: List[float] = []
        self._clock = clock
        self.last_t: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self._samples.append(value)
        self.last_t = self._clock()
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def summary(self) -> SummaryStats:
        """Summary statistics of the raw samples (empty-safe)."""
        return summarize(self._samples, empty_ok=True)

    def samples(self) -> List[float]:
        return list(self._samples)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper-bound, cumulative count) pairs, ending at +inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Sequence[str],
                 child_factory: Callable[[], object]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple, object] = {}
        self._factory = child_factory
        if not self.label_names:
            # Label-less family: materialize the single child eagerly so
            # the family itself can proxy inc/set/observe.
            self._children[()] = child_factory()

    def labels(self, **kv) -> object:
        if set(kv) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(kv))}")
        key = tuple(str(kv[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    def children(self) -> Iterable[Tuple[Tuple, object]]:
        return self._children.items()

    # -- label-less convenience proxies ----------------------------------

    def _only(self):
        if self.label_names:
            raise ValueError(f"{self.name} has labels {self.label_names}; "
                             "use .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def observe(self, value: float) -> None:
        self._only().observe(value)


class MetricsRegistry:
    """All metric families plus the pull-time collectors."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = clock or _zero_clock
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- clock -----------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the registry to a simulation clock (``sim's now`` getter).
        Existing metric instances keep recording against the new clock."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    def _tick(self) -> float:
        return self._clock()

    # -- family constructors ---------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str], factory) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"type/label schema")
            return family
        family = MetricFamily(name, kind, help, labels, factory)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels,
                            lambda: Counter(self._tick))

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels,
                            lambda: Gauge(self._tick))

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._family(name, "histogram", help, labels,
                            lambda: Histogram(self._tick, buckets))

    def family(self, name: str) -> MetricFamily:
        return self._families[name]

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- collectors -------------------------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """``fn(registry)`` runs on every :meth:`collect` to pull
        component-local counters (cache stats etc.) into the registry."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in list(self._collectors):
            fn(self)

    # -- snapshots & export ------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flattened ``name{label="v",...}`` -> value map (collectors run
        first).  Histograms contribute ``_count`` and ``_sum``."""
        self.collect()
        out: Dict[str, float] = {}
        for family in self._families.values():
            for values, child in family.children():
                suffix = _label_str(family.label_names, values)
                if family.kind == "histogram":
                    out[f"{family.name}_count{suffix}"] = child.count
                    out[f"{family.name}_sum{suffix}"] = child.sum
                else:
                    out[f"{family.name}{suffix}"] = child.value
        return out

    def prometheus_text(self) -> str:
        """Prometheus exposition-format snapshot (text, version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, child in sorted(family.children()):
                suffix = _label_str(family.label_names, values)
                if family.kind == "histogram":
                    for bound, running in child.cumulative_buckets():
                        le = "+Inf" if math.isinf(bound) else repr(bound)
                        if family.label_names:
                            pairs = ",".join(
                                f'{k}="{v}"'
                                for k, v in zip(family.label_names, values))
                            lines.append(
                                f'{name}_bucket{{{pairs},le="{le}"}} {running}')
                        else:
                            lines.append(f'{name}_bucket{{le="{le}"}} {running}')
                    lines.append(f"{name}_sum{suffix} {child.sum}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    lines.append(f"{name}{suffix} {child.value}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop all metric state and collectors (tests, fresh runs)."""
        self._families.clear()
        self._collectors.clear()
