"""Exception hierarchy for the MTS reproduction.

All errors raised by this package derive from :class:`ReproError` so that
callers can catch everything from one root, while still being able to
discriminate configuration problems from resource exhaustion or simulation
bugs.
"""


class ReproError(Exception):
    """Root of the package exception hierarchy."""


class ConfigurationError(ReproError):
    """A spec, address, or device was configured inconsistently."""


class ValidationError(ConfigurationError):
    """A deployment spec failed validation before planning."""


class ResourceError(ReproError):
    """A physical resource (cores, memory, VFs) was exhausted."""


class VFExhaustedError(ResourceError):
    """No more SR-IOV virtual functions are available on the PF."""


class CoreExhaustedError(ResourceError):
    """No more physical CPU cores are available on the server."""


class MemoryExhaustedError(ResourceError):
    """Not enough RAM or hugepages are available on the server."""


class AddressError(ConfigurationError):
    """A MAC or IP address was malformed or duplicated."""


class FlowTableError(ReproError):
    """A flow rule is malformed or conflicts with an existing rule."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ScenarioTimeoutError(ReproError):
    """A scenario exceeded the engine's per-scenario wall-clock budget.

    Raised by the process-pool backend when a worker fails to return a
    result within its configured timeout.  Distinct from a worker
    *crash* (which the backend survives by retrying sequentially): a
    timeout is surfaced loudly because silently re-running a scenario
    that hangs would hang the parent too.

    ``pending`` names the scenarios (display labels) that never
    finished; ``completed`` counts the results that *were* collected
    before the deadline -- with out-of-order collection a single wedged
    worker no longer blocks the rest of the batch, so ``completed`` is
    usually ``len(specs) - len(pending)``.
    """

    def __init__(self, message: str, pending=(), completed: int = 0) -> None:
        super().__init__(message)
        self.pending = tuple(pending)
        self.completed = completed


class SecurityViolation(ReproError):
    """A packet or operation violated a configured security policy.

    Raised only in *strict* enforcement contexts; the normal dataplane
    silently drops offending packets and counts them, as a real NIC does.
    """
